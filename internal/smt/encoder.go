package smt

import (
	"fmt"
	"sort"
	"strings"

	"ipa/internal/logic"
	"ipa/internal/sat"
)

// Domain assigns each sort a finite set of distinct elements — the "small
// scope" over which the analysis grounds quantifiers. Two elements per sort
// suffice for purely relational invariants; counting invariants need three
// (one pre-existing element plus two concurrently added ones).
type Domain map[logic.Sort][]string

// UniformScope builds a domain with n synthetic elements per sort, named
// Sort1..Sortn.
func UniformScope(sorts []logic.Sort, n int) Domain {
	d := make(Domain, len(sorts))
	for _, s := range sorts {
		elems := make([]string, n)
		for i := range elems {
			elems[i] = fmt.Sprintf("%s%d", s, i+1)
		}
		d[s] = elems
	}
	return d
}

// Sorts returns the domain's sorts in deterministic order.
func (d Domain) Sorts() []logic.Sort {
	out := make([]logic.Sort, 0, len(d))
	for s := range d {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Signature records the argument sorts of every predicate and numeric
// field, so wildcards and counts know what to range over.
type Signature map[string][]logic.Sort

// BoolEffect is a ground (or wildcard-pattern) boolean assignment:
// Pred(Args) := Val. An empty string in Args is a wildcard matching every
// domain element of the corresponding sort.
type BoolEffect struct {
	Pred string
	Args []string
	Val  bool
}

func (be BoolEffect) String() string {
	args := make([]string, len(be.Args))
	for i, a := range be.Args {
		if a == "" {
			args[i] = "*"
		} else {
			args[i] = a
		}
	}
	return fmt.Sprintf("%s(%s) := %v", be.Pred, strings.Join(args, ","), be.Val)
}

// NumEffect is a ground numeric delta: Fn(Args) += Delta.
type NumEffect struct {
	Fn    string
	Args  []string
	Delta int
}

func (ne NumEffect) String() string {
	op := "+="
	d := ne.Delta
	if d < 0 {
		op, d = "-=", -d
	}
	return fmt.Sprintf("%s(%s) %s %d", ne.Fn, strings.Join(ne.Args, ","), op, d)
}

// GroundEffects is the grounded footprint of one operation invocation.
type GroundEffects struct {
	Bools []BoolEffect
	Nums  []NumEffect
}

// Encoder owns a SAT solver and the shared symbolic constants; states are
// created against it. Create one Encoder per satisfiability query.
type Encoder struct {
	S      *sat.Solver
	Dom    Domain
	Sig    Signature
	consts map[string]bv
}

// NewEncoder returns an encoder over the given domain and signature.
func NewEncoder(dom Domain, sig Signature) *Encoder {
	return &Encoder{S: sat.New(), Dom: dom, Sig: sig, consts: map[string]bv{}}
}

// constWidth is the bit width of symbolic constants (range 0..2^(w-1)-1).
const constWidth = 7

// constVec returns (allocating on first use) the bit-vector of the named
// symbolic constant, constrained to be non-negative.
func (e *Encoder) constVec(name string) bv {
	if v, ok := e.consts[name]; ok {
		return v
	}
	v := make(bv, constWidth)
	for i := range v {
		v[i] = sat.Var(e.S.NewVar())
	}
	e.S.Assert(sat.Not(v[constWidth-1])) // sign bit clear: value >= 0
	e.consts[name] = v
	return v
}

// ConstValue reports the model value of a named constant after a
// satisfiable query (for counterexample printing).
func (e *Encoder) ConstValue(name string) (int, bool) {
	v, ok := e.consts[name]
	if !ok {
		return 0, false
	}
	return e.valueOf(v), true
}

// State is one copy of the database state. A root state has a fresh
// unconstrained variable per ground atom and numeric field; a derived
// state overlays the effects of one or two operations on its base.
type State struct {
	enc  *Encoder
	name string
	base *State

	// For derived states: effect overlay.
	bools []BoolEffect
	nums  []NumEffect
	// For merged states: the convergence-rule resolver, plus fresh
	// unconstrained variables for atoms with opposing assignments and no
	// convergence rule.
	resolve ResolveFunc
	unknown map[string]*sat.Formula

	atoms map[string]*sat.Formula // cache: ground atom -> formula
	fns   map[string]bv           // cache: ground numeric field -> vector
}

// NewState creates a root (pre-) state with the given diagnostic name.
func (e *Encoder) NewState(name string) *State {
	return &State{enc: e, name: name,
		atoms: map[string]*sat.Formula{}, fns: map[string]bv{}}
}

// Apply creates the post-state of executing the given effects on base.
func (e *Encoder) Apply(base *State, eff GroundEffects, name string) *State {
	return &State{enc: e, name: name, base: base,
		bools: eff.Bools, nums: eff.Nums,
		atoms: map[string]*sat.Formula{}, fns: map[string]bv{}}
}

// ResolveFunc decides the merged value of an atom assigned opposing values
// by two concurrent operations: the convergence rule of the predicate
// (true for add-wins, false for rem-wins). ok=false means no rule is
// defined and the merged value is unconstrained (either outcome possible).
type ResolveFunc func(pred string) (val bool, ok bool)

// Merge creates the state after both operations' effects are integrated,
// resolving opposing boolean assignments through the convergence rules and
// summing numeric deltas (paper Fig. 2 and Alg. 1, isConflicting).
func (e *Encoder) Merge(base *State, e1, e2 GroundEffects, resolve ResolveFunc, name string) *State {
	st := &State{enc: e, name: name, base: base,
		unknown: map[string]*sat.Formula{},
		atoms:   map[string]*sat.Formula{}, fns: map[string]bv{}}

	// Opposing exact assignments on the same atom: apply the convergence
	// rule; wildcard-vs-exact opposition is resolved the same way per atom
	// during lookup, by checking both effect lists.
	st.bools = append(st.bools, e1.Bools...)
	st.bools = append(st.bools, e2.Bools...)
	st.nums = append(st.nums, e1.Nums...)
	st.nums = append(st.nums, e2.Nums...)
	st.resolve = resolve
	return st
}

// atomKey builds the canonical ground-atom name.
func atomKey(pred string, args []string) string {
	if len(args) == 0 {
		return pred
	}
	return pred + "(" + strings.Join(args, ",") + ")"
}

// matches reports whether the effect pattern covers the ground args.
func patternMatches(pat, args []string) bool {
	if len(pat) != len(args) {
		return false
	}
	for i := range pat {
		if pat[i] != "" && pat[i] != args[i] {
			return false
		}
	}
	return true
}

// Atom returns the formula for ground atom pred(args) in this state.
func (s *State) Atom(pred string, args []string) *sat.Formula {
	key := atomKey(pred, args)
	if f, ok := s.atoms[key]; ok {
		return f
	}
	f := s.computeAtom(pred, args, key)
	s.atoms[key] = f
	return f
}

func (s *State) computeAtom(pred string, args []string, key string) *sat.Formula {
	if s.base == nil {
		// Root state: fresh unconstrained variable.
		return sat.Var(s.enc.S.NewVar())
	}
	// Collect assignments from the overlay, most specific first.
	assignedTrue, assignedFalse := false, false
	for _, be := range s.bools {
		if be.Pred == pred && patternMatches(be.Args, args) {
			if be.Val {
				assignedTrue = true
			} else {
				assignedFalse = true
			}
		}
	}
	switch {
	case assignedTrue && assignedFalse:
		if s.resolve != nil {
			if v, ok := s.resolve(pred); ok {
				if v {
					return sat.TrueF()
				}
				return sat.FalseF()
			}
		}
		// No convergence rule: merged value unconstrained.
		if f, ok := s.unknown[key]; ok {
			return f
		}
		f := sat.Var(s.enc.S.NewVar())
		if s.unknown == nil {
			s.unknown = map[string]*sat.Formula{}
		}
		s.unknown[key] = f
		return f
	case assignedTrue:
		return sat.TrueF()
	case assignedFalse:
		return sat.FalseF()
	}
	return s.base.Atom(pred, args)
}

// Fn returns the bit-vector for ground numeric field fn(args) in s.
func (s *State) Fn(fn string, args []string) bv {
	key := atomKey(fn, args)
	if v, ok := s.fns[key]; ok {
		return v
	}
	var v bv
	if s.base == nil {
		v = make(bv, constWidth)
		for i := range v {
			v[i] = sat.Var(s.enc.S.NewVar())
		}
	} else {
		v = s.base.Fn(fn, args)
		delta := 0
		for _, ne := range s.nums {
			if ne.Fn == fn && patternMatches(ne.Args, args) {
				delta += ne.Delta
			}
		}
		if delta != 0 {
			v = s.enc.add(v, constBV(delta))
		}
	}
	s.fns[key] = v
	return v
}

// Name returns the diagnostic name of the state.
func (s *State) Name() string { return s.name }
