// Package smt decides the first-order verification conditions of the IPA
// analysis by grounding them over a small finite scope and encoding the
// result into SAT (package sat). It plays the role the Z3 SMT solver plays
// in the paper: the analysis constructs states (pre-state, per-operation
// post-states, merged state), applies operation effects, and asks for a
// model that satisfies the invariant before and violates it after merge.
//
// Numeric reasoning (counts, numeric fields, symbolic constants such as
// Capacity) uses two's-complement bit-vectors built circuit-style: every
// internal adder/comparator node gets a fresh solver variable, keeping the
// encoded formulas flat.
package smt

import "ipa/internal/sat"

// bv is a little-endian two's-complement bit-vector of formulas.
type bv []*sat.Formula

// constBV encodes the signed integer n in the fewest bits that hold it.
func constBV(n int) bv {
	w := 2
	for ; w < 32; w++ {
		min, max := -(1 << (w - 1)), 1<<(w-1)-1
		if n >= min && n <= max {
			break
		}
	}
	out := make(bv, w)
	u := uint(n) // two's complement bit pattern
	for i := 0; i < w; i++ {
		if u&(1<<i) != 0 {
			out[i] = sat.TrueF()
		} else {
			out[i] = sat.FalseF()
		}
	}
	return out
}

// define allocates a fresh variable equivalent to f and returns it as a
// formula, keeping downstream circuitry flat. Constants pass through.
func (e *Encoder) define(f *sat.Formula) *sat.Formula {
	if c, _ := f.IsConst(); c || f.IsLiteral() {
		return f
	}
	v := e.S.NewVar()
	e.S.Assert(sat.Iff(sat.Var(v), f))
	return sat.Var(v)
}

func xor(a, b *sat.Formula) *sat.Formula {
	return sat.Or(sat.And(a, sat.Not(b)), sat.And(sat.Not(a), b))
}

// signExtend widens v to w bits.
func signExtend(v bv, w int) bv {
	if len(v) >= w {
		return v
	}
	out := make(bv, w)
	copy(out, v)
	sign := v[len(v)-1]
	for i := len(v); i < w; i++ {
		out[i] = sign
	}
	return out
}

// add returns a+b with one extra result bit, so it never overflows.
func (e *Encoder) add(a, b bv) bv {
	w := len(a)
	if len(b) > w {
		w = len(b)
	}
	w++ // result width: no overflow possible
	a = signExtend(a, w)
	b = signExtend(b, w)
	out := make(bv, w)
	carry := sat.FalseF()
	for i := 0; i < w; i++ {
		s := xor(xor(a[i], b[i]), carry)
		c := sat.Or(sat.And(a[i], b[i]), sat.And(a[i], carry), sat.And(b[i], carry))
		out[i] = e.define(s)
		carry = e.define(c)
	}
	return out
}

// neg returns -a (two's complement), one bit wider to represent -min.
func (e *Encoder) neg(a bv) bv {
	w := len(a) + 1
	a = signExtend(a, w)
	inv := make(bv, w)
	for i := range a {
		inv[i] = sat.Not(a[i])
	}
	one := bv{sat.TrueF(), sat.FalseF()} // +1 with a clear sign bit
	return e.add(inv, one)
}

// sub returns a-b.
func (e *Encoder) sub(a, b bv) bv { return e.add(a, e.neg(b)) }

// equal returns the formula a = b.
func (e *Encoder) equal(a, b bv) *sat.Formula {
	w := len(a)
	if len(b) > w {
		w = len(b)
	}
	a = signExtend(a, w)
	b = signExtend(b, w)
	parts := make([]*sat.Formula, w)
	for i := 0; i < w; i++ {
		parts[i] = sat.Not(xor(a[i], b[i]))
	}
	return e.define(sat.And(parts...))
}

// less returns the formula a < b (signed).
func (e *Encoder) less(a, b bv) *sat.Formula {
	w := len(a)
	if len(b) > w {
		w = len(b)
	}
	a = signExtend(a, w)
	b = signExtend(b, w)
	// Unsigned comparison of magnitude bits with the sign bit flipped
	// implements signed comparison: compare (sign XOR 1) as MSB.
	// a < b  iff  (sa & !sb) | (sa==sb & ultLow)
	sa, sb := a[w-1], b[w-1]
	lt := sat.FalseF()
	for i := 0; i < w-1; i++ {
		bitLt := sat.And(sat.Not(a[i]), b[i])
		bitEq := sat.Not(xor(a[i], b[i]))
		lt = sat.Or(bitLt, sat.And(bitEq, lt))
		lt = e.define(lt)
	}
	sameSign := sat.Not(xor(sa, sb))
	return e.define(sat.Or(sat.And(sa, sat.Not(sb)), sat.And(sameSign, lt)))
}

// sum adds a list of single-bit values (0/1 each) into a bit-vector.
func (e *Encoder) sum(bits []*sat.Formula) bv {
	if len(bits) == 0 {
		return constBV(0)
	}
	// Balanced tree of adds over 2-bit non-negative vectors.
	vecs := make([]bv, len(bits))
	for i, b := range bits {
		vecs[i] = bv{b, sat.FalseF()} // value 0 or 1, sign bit clear
	}
	for len(vecs) > 1 {
		var next []bv
		for i := 0; i+1 < len(vecs); i += 2 {
			next = append(next, e.add(vecs[i], vecs[i+1]))
		}
		if len(vecs)%2 == 1 {
			next = append(next, vecs[len(vecs)-1])
		}
		vecs = next
	}
	return vecs[0]
}

// valueOf decodes the model value of v after a successful solve.
func (e *Encoder) valueOf(v bv) int {
	model := e.S.Model()
	n := 0
	for i, f := range v {
		if f.Eval(model) {
			n |= 1 << i
		}
	}
	// Sign extend from the top bit.
	if v[len(v)-1].Eval(model) {
		n -= 1 << len(v)
	}
	return n
}
