package smt

import (
	"fmt"

	"ipa/internal/logic"
	"ipa/internal/sat"
)

// Binding maps variable names to domain elements.
type Binding map[string]string

// Formula grounds the closed first-order formula f in state st and returns
// the propositional encoding. Quantifiers expand over the encoder's domain;
// predicate atoms resolve to the state's atom variables; numeric
// comparisons are encoded as bit-vector circuits. The formula must have no
// free variables beyond those bound in env.
func (e *Encoder) Formula(f logic.Formula, st *State, env Binding) (*sat.Formula, error) {
	switch g := f.(type) {
	case *logic.BoolLit:
		if g.Val {
			return sat.TrueF(), nil
		}
		return sat.FalseF(), nil

	case *logic.Atom:
		args, err := e.groundArgs(g.Args, env, g.Pred)
		if err != nil {
			return nil, err
		}
		// A wildcard argument in a formula atom means "for every element":
		// the atom is true iff it holds for all matching ground atoms. This
		// mirrors the effect-side wildcard.
		combos, err := e.expandWildcards(g.Pred, args)
		if err != nil {
			return nil, err
		}
		parts := make([]*sat.Formula, len(combos))
		for i, c := range combos {
			parts[i] = st.Atom(g.Pred, c)
		}
		return sat.And(parts...), nil

	case *logic.Not:
		inner, err := e.Formula(g.F, st, env)
		if err != nil {
			return nil, err
		}
		return sat.Not(inner), nil

	case *logic.And:
		parts := make([]*sat.Formula, len(g.L))
		for i, c := range g.L {
			p, err := e.Formula(c, st, env)
			if err != nil {
				return nil, err
			}
			parts[i] = p
		}
		return sat.And(parts...), nil

	case *logic.Or:
		parts := make([]*sat.Formula, len(g.L))
		for i, c := range g.L {
			p, err := e.Formula(c, st, env)
			if err != nil {
				return nil, err
			}
			parts[i] = p
		}
		return sat.Or(parts...), nil

	case *logic.Implies:
		a, err := e.Formula(g.A, st, env)
		if err != nil {
			return nil, err
		}
		b, err := e.Formula(g.B, st, env)
		if err != nil {
			return nil, err
		}
		return sat.Implies(a, b), nil

	case *logic.Forall:
		return e.expandForall(g, st, env)

	case *logic.Cmp:
		l, err := e.numTerm(g.L, st, env)
		if err != nil {
			return nil, err
		}
		r, err := e.numTerm(g.R, st, env)
		if err != nil {
			return nil, err
		}
		return e.compare(g.Op, l, r), nil
	}
	return nil, fmt.Errorf("smt: unknown formula node %T", f)
}

func (e *Encoder) expandForall(g *logic.Forall, st *State, env Binding) (*sat.Formula, error) {
	// Expand variables one tuple at a time (depth-first product).
	var parts []*sat.Formula
	var rec func(i int, env Binding) error
	rec = func(i int, env Binding) error {
		if i == len(g.Vars) {
			p, err := e.Formula(g.Body, st, env)
			if err != nil {
				return err
			}
			parts = append(parts, p)
			return nil
		}
		v := g.Vars[i]
		elems, ok := e.Dom[v.Sort]
		if !ok {
			return fmt.Errorf("smt: sort %q not in domain", v.Sort)
		}
		for _, el := range elems {
			inner := make(Binding, len(env)+1)
			for k, x := range env {
				inner[k] = x
			}
			inner[v.Name] = el
			if err := rec(i+1, inner); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, env); err != nil {
		return nil, err
	}
	return sat.And(parts...), nil
}

func (e *Encoder) compare(op logic.CmpOp, l, r bv) *sat.Formula {
	switch op {
	case logic.EQ:
		return e.equal(l, r)
	case logic.NE:
		return sat.Not(e.equal(l, r))
	case logic.LT:
		return e.less(l, r)
	case logic.LE:
		return sat.Not(e.less(r, l))
	case logic.GT:
		return e.less(r, l)
	case logic.GE:
		return sat.Not(e.less(l, r))
	}
	panic("smt: unknown comparison operator")
}

func (e *Encoder) numTerm(t logic.NumTerm, st *State, env Binding) (bv, error) {
	switch u := t.(type) {
	case *logic.IntLit:
		return constBV(u.N), nil
	case *logic.ConstRef:
		return e.constVec(u.Name), nil
	case *logic.FnApp:
		args, err := e.groundArgs(u.Args, env, u.Fn)
		if err != nil {
			return nil, err
		}
		for _, a := range args {
			if a == "" {
				return nil, fmt.Errorf("smt: wildcard argument in numeric field %s", u.Fn)
			}
		}
		return st.Fn(u.Fn, args), nil
	case *logic.Count:
		args, err := e.groundArgs(u.Args, env, u.Pred)
		if err != nil {
			return nil, err
		}
		combos, err := e.expandWildcards(u.Pred, args)
		if err != nil {
			return nil, err
		}
		bits := make([]*sat.Formula, len(combos))
		for i, c := range combos {
			bits[i] = st.Atom(u.Pred, c)
		}
		return e.sum(bits), nil
	case *logic.NumBin:
		l, err := e.numTerm(u.L, st, env)
		if err != nil {
			return nil, err
		}
		r, err := e.numTerm(u.R, st, env)
		if err != nil {
			return nil, err
		}
		if u.Op == '-' {
			return e.sub(l, r), nil
		}
		return e.add(l, r), nil
	}
	return nil, fmt.Errorf("smt: unknown numeric term %T", t)
}

// groundArgs resolves terms to domain elements: variables through env,
// constants as themselves, wildcards as "".
func (e *Encoder) groundArgs(args []logic.Term, env Binding, what string) ([]string, error) {
	out := make([]string, len(args))
	for i, a := range args {
		switch a.Kind {
		case logic.TermVar:
			el, ok := env[a.Name]
			if !ok {
				return nil, fmt.Errorf("smt: unbound variable %q in %s", a.Name, what)
			}
			out[i] = el
		case logic.TermConst:
			out[i] = a.Name
		case logic.TermWildcard:
			out[i] = ""
		}
	}
	return out, nil
}

// expandWildcards enumerates ground argument tuples for a pattern that may
// contain wildcards, using the predicate signature for the sorts.
func (e *Encoder) expandWildcards(pred string, args []string) ([][]string, error) {
	hasWild := false
	for _, a := range args {
		if a == "" {
			hasWild = true
			break
		}
	}
	if !hasWild {
		return [][]string{args}, nil
	}
	sorts, ok := e.Sig[pred]
	if !ok || len(sorts) != len(args) {
		return nil, fmt.Errorf("smt: wildcard in %s needs a signature with %d sorts", pred, len(args))
	}
	out := [][]string{{}}
	for i, a := range args {
		var next [][]string
		if a != "" {
			for _, prefix := range out {
				next = append(next, append(append([]string{}, prefix...), a))
			}
		} else {
			elems, ok := e.Dom[sorts[i]]
			if !ok {
				return nil, fmt.Errorf("smt: sort %q of %s arg %d not in domain", sorts[i], pred, i)
			}
			for _, prefix := range out {
				for _, el := range elems {
					next = append(next, append(append([]string{}, prefix...), el))
				}
			}
		}
		out = next
	}
	return out, nil
}

// Assert grounds f in st and asserts it must hold.
func (e *Encoder) Assert(f logic.Formula, st *State) error {
	p, err := e.Formula(f, st, Binding{})
	if err != nil {
		return err
	}
	e.S.Assert(p)
	return nil
}

// AssertNot grounds f in st and asserts its negation.
func (e *Encoder) AssertNot(f logic.Formula, st *State) error {
	p, err := e.Formula(f, st, Binding{})
	if err != nil {
		return err
	}
	e.S.Assert(sat.Not(p))
	return nil
}

// Solve runs the SAT solver.
func (e *Encoder) Solve() bool { return e.S.Solve() }

// AtomValue reports the model value of a ground atom in st after a
// satisfiable query (for counterexample printing). The atom must have been
// mentioned by an encoded formula.
func (st *State) AtomValue(pred string, args []string) (bool, bool) {
	f, ok := st.atoms[atomKey(pred, args)]
	if !ok {
		return false, false
	}
	return f.Eval(st.enc.S.Model()), true
}

// FnValue reports the model value of a ground numeric field in st.
func (st *State) FnValue(fn string, args []string) (int, bool) {
	v, ok := st.fns[atomKey(fn, args)]
	if !ok {
		return 0, false
	}
	return st.enc.valueOf(v), true
}

// Atoms lists the ground atoms this state has materialised (model
// inspection helper).
func (st *State) Atoms() []string {
	out := make([]string, 0, len(st.atoms))
	for k := range st.atoms {
		out = append(out, k)
	}
	return out
}

// Fns lists the ground numeric fields this state has materialised.
func (st *State) Fns() []string {
	out := make([]string, 0, len(st.fns))
	for k := range st.fns {
		out = append(out, k)
	}
	return out
}

// FnValueByKey reports the model value of a materialised numeric field by
// its canonical key (as returned by Fns).
func (st *State) FnValueByKey(key string) (int, bool) {
	v, ok := st.fns[key]
	if !ok {
		return 0, false
	}
	return st.enc.valueOf(v), true
}

// AtomValueByKey reports the model value of a materialised atom by its
// canonical key (as returned by Atoms).
func (st *State) AtomValueByKey(key string) (bool, bool) {
	f, ok := st.atoms[key]
	if !ok {
		return false, false
	}
	return f.Eval(st.enc.S.Model()), true
}
