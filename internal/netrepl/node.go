// Package netrepl replicates the store over real TCP connections: each
// node hosts one replica and streams committed transactions to its peers
// as length-prefixed, versioned batch frames. It demonstrates that the
// replication protocol (causal delivery of atomic transaction effect
// groups) is independent of the in-process simulator used by the
// evaluation — the same store runs over actual sockets — and that
// invariant preservation needs no runtime coordination: replication stays
// fully asynchronous.
//
// The transport is a streaming design built for throughput:
//
//   - one persistent connection per peer, dialed lazily on the first
//     send and re-established after failures with exponential backoff
//     plus jitter;
//   - a bounded per-peer outbound queue; commits enqueue and return,
//     a dedicated sender goroutine per peer coalesces queued
//     transactions into batch frames (Config.FlushInterval and
//     Config.MaxBatchTxns bound the coalescing window and batch size);
//   - backpressure instead of unbounded memory: when a peer's queue is
//     full the committing transaction blocks until the sender drains
//     (counted in Metrics.BackpressureWaits), never dropping a frame —
//     a causal gap would stall the receiver's dependency queue forever;
//   - acknowledged delivery: the receiver confirms each batch frame after
//     applying it, and the sender counts a frame sent only on ack. A
//     write that succeeds into a socket the peer kills before reading
//     would otherwise be silent loss — the chaos soak (internal/harness)
//     surfaces exactly this under connection churn;
//   - graceful shutdown: Close stops accepting work and gives every
//     sender Config.DrainTimeout to flush its queue before abandoning
//     the remainder (counted in Metrics.TxnsDropped).
//
// Delivery is at-least-once — a sender that loses its connection (or an
// ack) mid-frame retries the whole batch — and the receive path
// deduplicates by origin sequence number, so effects apply exactly once.
// Causal order across connections is enforced by the receiver's
// dependency queue, exactly as in the simulator; batches may arrive
// reordered, duplicated, or interleaved with legacy single-transaction
// frames and the replica state still converges.
//
// The original connection-per-transaction demo transport is kept behind
// Config.Legacy for benchmarking (internal/bench measures streaming vs
// legacy throughput) and as a wire-compatibility check: v0 frames decode
// through the same versioned entry point new receivers use.
package netrepl

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ipa/internal/clock"
	"ipa/internal/crdt"
	"ipa/internal/store"
)

// maxFrame caps the size of one accepted frame.
const maxFrame = 64 << 20

// ackMagic is the fixed acknowledgement word the receiver writes back
// after applying one frame. The protocol is synchronous per connection —
// one frame in flight, one ack — so the word needs no sequence number;
// any mismatch means a corrupt stream and drops the connection.
const ackMagic = 0x41434B31 // "ACK1"

// Config tunes the streaming transport. The zero value selects the
// defaults noted on each field; see DefaultConfig.
type Config struct {
	// FlushInterval is how long a sender waits after the first queued
	// transaction for more to coalesce into the same batch frame.
	// Default 500µs: long enough to batch a commit burst, short enough
	// to keep single-transaction latency in the sub-millisecond range.
	FlushInterval time.Duration
	// MaxBatchTxns caps the transactions per batch frame. Default 256.
	MaxBatchTxns int
	// QueueCap bounds each peer's outbound queue in transactions.
	// Default 8192. A full queue applies backpressure to committers.
	QueueCap int
	// DialTimeout bounds one connection attempt. Default 2s.
	DialTimeout time.Duration
	// WriteTimeout bounds one frame write; a peer that accepts the
	// connection but stops reading fails the write instead of blocking
	// the sender (and Close) forever. Default 10s.
	WriteTimeout time.Duration
	// BackoffMin/BackoffMax bound the exponential reconnect backoff
	// (with jitter). Defaults 5ms and 1s.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// DrainTimeout is how long Close lets senders flush outstanding
	// queues before abandoning them. Default 2s.
	DrainTimeout time.Duration
	// Legacy selects the original demo transport: one short-lived
	// connection per transaction per peer, sent synchronously from
	// Commit. Kept for benchmarking against the streaming path.
	Legacy bool
}

// DefaultConfig returns the streaming transport defaults.
func DefaultConfig() Config {
	return Config{
		FlushInterval: 500 * time.Microsecond,
		MaxBatchTxns:  256,
		QueueCap:      8192,
		DialTimeout:   2 * time.Second,
		WriteTimeout:  10 * time.Second,
		BackoffMin:    5 * time.Millisecond,
		BackoffMax:    time.Second,
		DrainTimeout:  2 * time.Second,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.FlushInterval <= 0 {
		c.FlushInterval = d.FlushInterval
	}
	if c.MaxBatchTxns <= 0 {
		c.MaxBatchTxns = d.MaxBatchTxns
	}
	if c.QueueCap <= 0 {
		c.QueueCap = d.QueueCap
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = d.DialTimeout
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = d.WriteTimeout
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = d.BackoffMin
	}
	if c.BackoffMax < c.BackoffMin {
		c.BackoffMax = d.BackoffMax
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = d.DrainTimeout
	}
	return c
}

// Metrics is a point-in-time snapshot of a node's transport counters.
type Metrics struct {
	// Dials counts successful connection establishments; Reconnects is
	// the subset that replaced a previously working connection.
	Dials, Reconnects uint64
	// SendErrors counts failed dial attempts and failed frame writes
	// (each followed by a backoff + retry, so errors are not losses).
	SendErrors uint64
	// FramesSent/TxnsSent/BytesSent cover the outbound path; frames and
	// transactions count only once the peer acknowledged applying them.
	// The TxnsSent/FramesSent ratio is the achieved batching factor.
	FramesSent, TxnsSent, BytesSent uint64
	// FramesRecv/TxnsRecv/BytesRecv cover the inbound path.
	FramesRecv, TxnsRecv, BytesRecv uint64
	// BackpressureWaits counts commits that blocked on a full peer queue.
	BackpressureWaits uint64
	// TxnsDropped counts transactions abandoned because Close's drain
	// timeout expired before a peer became reachable.
	TxnsDropped uint64
	// QueueDepth is the current total of queued outbound transactions
	// across peers.
	QueueDepth int
}

func (m Metrics) String() string {
	batch := 0.0
	if m.FramesSent > 0 {
		batch = float64(m.TxnsSent) / float64(m.FramesSent)
	}
	return fmt.Sprintf(
		"sent %d txns in %d frames (%.1f txns/frame, %d bytes), recv %d txns in %d frames, "+
			"dials %d (reconnects %d), send errors %d, backpressure waits %d, dropped %d, queue %d",
		m.TxnsSent, m.FramesSent, batch, m.BytesSent, m.TxnsRecv, m.FramesRecv,
		m.Dials, m.Reconnects, m.SendErrors, m.BackpressureWaits, m.TxnsDropped, m.QueueDepth)
}

// counters holds the atomically updated parts of Metrics.
type counters struct {
	dials, reconnects               uint64
	sendErrors                      uint64
	framesSent, txnsSent, bytesSent uint64
	framesRecv, txnsRecv, bytesRecv uint64
	backpressureWaits, txnsDropped  uint64
}

// Node hosts one replica of the database and replicates over TCP.
type Node struct {
	id      clock.ReplicaID
	cfg     Config
	cluster *store.Cluster

	// mu is the replica lock: local transactions (Do) and the receive
	// path serialise on it. A committer blocked on backpressure holds it,
	// so nothing else (Stats, AddPeer) may depend on it.
	mu sync.Mutex

	peersMu sync.RWMutex
	peers   map[clock.ReplicaID]*peerConn

	ln        net.Listener
	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
	closeErr  error
	drainDL   atomic.Value // time.Time: deadline for post-Close flushing

	connMu sync.Mutex
	conns  map[net.Conn]struct{} // accepted (inbound) connections

	// blockMu guards blocked: origins whose frames the receive path
	// refuses (the partition fault hook — see BlockOrigin).
	blockMu sync.Mutex
	blocked map[clock.ReplicaID]bool

	m counters
}

// NewNode creates a node with the default streaming configuration,
// listening on addr (use "127.0.0.1:0" for an ephemeral port).
func NewNode(id clock.ReplicaID, addr string) (*Node, error) {
	return NewNodeWithConfig(id, addr, Config{})
}

// NewNodeWithConfig creates a node with an explicit transport
// configuration. The node's replica lives in a single-member cluster; all
// replication flows through the TCP transport.
func NewNodeWithConfig(id clock.ReplicaID, addr string, cfg Config) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netrepl: listen: %w", err)
	}
	n := &Node{
		id:      id,
		cfg:     cfg.withDefaults(),
		cluster: store.NewSocketCluster(id),
		peers:   map[clock.ReplicaID]*peerConn{},
		ln:      ln,
		closed:  make(chan struct{}),
		conns:   map[net.Conn]struct{}{},
		blocked: map[clock.ReplicaID]bool{},
	}
	n.cluster.SetOnCommit(n.broadcast)
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's listening address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// ID returns the node's replica identifier.
func (n *Node) ID() clock.ReplicaID { return n.id }

// AddPeer registers a peer to replicate to and starts its sender. Adding
// the same peer id again is a no-op.
func (n *Node) AddPeer(id clock.ReplicaID, addr string) {
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	if _, ok := n.peers[id]; ok {
		return
	}
	p := newPeerConn(n, id, addr)
	n.peers[id] = p
	if !n.cfg.Legacy {
		n.wg.Add(1)
		go p.run()
	}
}

// Do runs fn against the node's replica under the node lock. All local
// reads and transactions must go through Do: the TCP receive path applies
// remote transactions concurrently.
func (n *Node) Do(fn func(r *store.Replica)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	fn(n.cluster.Replica(n.id))
}

// Begin starts a highly available transaction at the node's replica,
// holding the node lock until the transaction commits — the runtime
// backend surface (runtime.Replica). The lock serialises the transaction
// against the TCP receive path, so reads inside it observe a causally
// consistent, transaction-atomic state exactly as on the simulator. Never
// hold two uncommitted transactions on one node, and always commit.
// Commit broadcasts under this lock, so a committer can block on
// backpressure while holding it (same as Do); see runtime.Replica for
// the multi-node discipline that follows.
func (n *Node) Begin() *store.Txn {
	n.mu.Lock()
	tx := n.cluster.Replica(n.id).Begin()
	tx.OnFinish(n.mu.Unlock)
	return tx
}

// Object returns the CRDT stored at key, creating it with mk when absent.
// It takes the node lock; do not call it between Begin and Commit.
func (n *Node) Object(key string, mk func() crdt.CRDT) crdt.CRDT {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cluster.Replica(n.id).Object(key, mk)
}

// Lookup returns the CRDT stored at key if it exists, under the node
// lock; do not call it between Begin and Commit.
func (n *Node) Lookup(key string) (crdt.CRDT, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cluster.Replica(n.id).Lookup(key)
}

// SetPaused freezes (or thaws) the replica's delivery pipeline — the
// crash/recovery fault hook, identical to the simulator's: remote frames
// are still received and acknowledged, but queue in the causal delivery
// buffer without applying. Unpausing drains the buffer in causal order.
func (n *Node) SetPaused(paused bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cluster.SetPaused(n.id, paused)
}

// BlockOrigin makes the receive path refuse frames whose transactions
// originate from the given replica — the partition fault hook. A refused
// frame's connection drops without an acknowledgement, so the sender
// retries with backoff until the block lifts: delivery stays at-least-once
// and no transaction is lost, exactly the buffered-partition semantics of
// the simulator. Blocking is receive-side because every node streams only
// its own commits, so "frames originating at a" ≡ "the a→n link".
func (n *Node) BlockOrigin(origin clock.ReplicaID, blocked bool) {
	n.blockMu.Lock()
	defer n.blockMu.Unlock()
	if blocked {
		n.blocked[origin] = true
	} else {
		delete(n.blocked, origin)
	}
}

func (n *Node) originBlocked(origin clock.ReplicaID) bool {
	n.blockMu.Lock()
	defer n.blockMu.Unlock()
	return n.blocked[origin]
}

// Stats returns a snapshot of the node's transport metrics.
func (n *Node) Stats() Metrics {
	m := Metrics{
		Dials:             atomic.LoadUint64(&n.m.dials),
		Reconnects:        atomic.LoadUint64(&n.m.reconnects),
		SendErrors:        atomic.LoadUint64(&n.m.sendErrors),
		FramesSent:        atomic.LoadUint64(&n.m.framesSent),
		TxnsSent:          atomic.LoadUint64(&n.m.txnsSent),
		BytesSent:         atomic.LoadUint64(&n.m.bytesSent),
		FramesRecv:        atomic.LoadUint64(&n.m.framesRecv),
		TxnsRecv:          atomic.LoadUint64(&n.m.txnsRecv),
		BytesRecv:         atomic.LoadUint64(&n.m.bytesRecv),
		BackpressureWaits: atomic.LoadUint64(&n.m.backpressureWaits),
		TxnsDropped:       atomic.LoadUint64(&n.m.txnsDropped),
	}
	n.peersMu.RLock()
	for _, p := range n.peers {
		m.QueueDepth += len(p.ch)
	}
	n.peersMu.RUnlock()
	return m
}

// broadcast ships one committed transaction to every peer. Called from
// Commit, which runs under the node lock via Do. In streaming mode it
// enqueues and returns; in legacy mode it dials and sends synchronously.
func (n *Node) broadcast(w store.WireTxn) {
	if n.cfg.Legacy {
		n.legacyBroadcast(w)
		return
	}
	n.peersMu.RLock()
	defer n.peersMu.RUnlock()
	for _, p := range n.peers {
		p.enqueue(w)
	}
}

// legacyBroadcast is the original demo transport: one short-lived
// connection per transaction per peer, no retries.
func (n *Node) legacyBroadcast(w store.WireTxn) {
	data, err := store.EncodeTxn(w)
	if err != nil {
		atomic.AddUint64(&n.m.sendErrors, 1)
		return
	}
	n.peersMu.RLock()
	defer n.peersMu.RUnlock()
	for _, p := range n.peers {
		conn, err := net.DialTimeout("tcp", p.addr, n.cfg.DialTimeout)
		if err != nil {
			atomic.AddUint64(&n.m.sendErrors, 1)
			continue
		}
		atomic.AddUint64(&n.m.dials, 1)
		if err := writeFrame(conn, data); err != nil {
			atomic.AddUint64(&n.m.sendErrors, 1)
		} else {
			atomic.AddUint64(&n.m.framesSent, 1)
			atomic.AddUint64(&n.m.txnsSent, 1)
			atomic.AddUint64(&n.m.bytesSent, uint64(len(data)+4))
		}
		conn.Close()
	}
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
				continue
			}
		}
		// Register under connMu, re-checking closed: Close sweeps the
		// map after closing n.closed, so a connection accepted in that
		// window must be closed here or nothing ever closes it (and
		// Close would wait on its handler forever). The wg.Add must also
		// happen inside the critical section: Close holds connMu for its
		// sweep before it waits, so either this handler is registered (and
		// counted) before the sweep, or the closed re-check above fires —
		// an Add racing a started Wait could otherwise let Close return
		// while the handler still runs (and lets DropConnections during
		// Close observe a connection that was never registered).
		n.connMu.Lock()
		select {
		case <-n.closed:
			n.connMu.Unlock()
			conn.Close()
			return
		default:
		}
		n.conns[conn] = struct{}{}
		n.wg.Add(1)
		n.connMu.Unlock()
		go n.handle(conn)
	}
}

func (n *Node) handle(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		n.connMu.Lock()
		delete(n.conns, conn)
		n.connMu.Unlock()
		conn.Close()
	}()
	for {
		data, err := readFrame(conn)
		if err != nil {
			return
		}
		txns, err := store.DecodeFrame(data)
		if err != nil {
			return // corrupt stream: drop the connection, sender retries
		}
		// Partition fault: refuse the frame without acking — the sender
		// keeps the batch and retries with backoff until the block lifts.
		// (A frame carries one origin's transactions: nodes stream only
		// their own commits.)
		if len(txns) > 0 && n.originBlocked(txns[0].Origin) {
			return
		}
		atomic.AddUint64(&n.m.framesRecv, 1)
		atomic.AddUint64(&n.m.bytesRecv, uint64(len(data)+4))
		n.mu.Lock()
		for _, w := range txns {
			n.cluster.Deliver(n.id, w)
		}
		n.mu.Unlock()
		atomic.AddUint64(&n.m.txnsRecv, uint64(len(txns)))
		// Acknowledge only after the batch is applied (or queued for its
		// causal dependencies): the sender may now forget it. Legacy
		// senders never read acks; the write then fails or lands in a
		// buffer nobody drains, both harmless.
		if err := writeAck(conn); err != nil {
			return
		}
	}
}

// writeAck confirms one applied frame.
func writeAck(conn net.Conn) error {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], ackMagic)
	_, err := conn.Write(buf[:])
	return err
}

// readAck consumes one acknowledgement within the deadline.
func readAck(conn net.Conn, deadline time.Time) error {
	if err := conn.SetReadDeadline(deadline); err != nil {
		return err
	}
	var buf [4]byte
	if _, err := io.ReadFull(conn, buf[:]); err != nil {
		return err
	}
	if binary.BigEndian.Uint32(buf[:]) != ackMagic {
		return fmt.Errorf("netrepl: bad ack word %x", buf)
	}
	return nil
}

// DropConnections abruptly closes every accepted inbound connection — the
// chaos hook for connection churn. Peers streaming to this node see their
// next write fail and re-dial with backoff; delivery is at-least-once, so
// retried batches deduplicate and no transaction is lost. The listener
// stays up, so reconnects succeed immediately. It returns the number of
// connections killed.
//
// Racing Close is allowed: once the node is closing, Close owns the
// teardown — it sweeps the same map under connMu and then waits for the
// handlers — so DropConnections backs off and reports zero rather than
// re-closing connections mid-drain (peers in their ack/retry loop would
// count the kill against the dying node and re-send into a closed
// listener).
func (n *Node) DropConnections() int {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	select {
	case <-n.closed:
		return 0
	default:
	}
	for c := range n.conns {
		c.Close()
	}
	return len(n.conns)
}

// Pending reports the size of the causal delivery queue (transactions
// waiting for their dependencies).
func (n *Node) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cluster.Replica(n.id).PendingCount()
}

// Clock returns the replica's delivered causal cut.
func (n *Node) Clock() clock.Vector {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cluster.Replica(n.id).Clock()
}

// Close drains the outbound queues (for up to Config.DrainTimeout), stops
// the listener and senders, and waits for in-flight handlers. Safe to
// call more than once.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		n.drainDL.Store(time.Now().Add(n.cfg.DrainTimeout))
		close(n.closed)
		n.closeErr = n.ln.Close()
		// Senders flush on their own; inbound connections would block
		// forever on read (peers hold them open), so close them.
		n.connMu.Lock()
		for c := range n.conns {
			c.Close()
		}
		n.connMu.Unlock()
		n.wg.Wait()
	})
	return n.closeErr
}

// drainDeadline reports the post-Close flush deadline (zero before Close).
func (n *Node) drainDeadline() time.Time {
	if v := n.drainDL.Load(); v != nil {
		return v.(time.Time)
	}
	return time.Time{}
}

// writeFrame writes one length-prefixed frame.
func writeFrame(conn net.Conn, data []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(data)
	return err
}

// readFrame reads one length-prefixed frame, refusing absurd sizes.
func readFrame(conn net.Conn) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > maxFrame {
		return nil, fmt.Errorf("netrepl: frame of %d bytes exceeds limit", size)
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(conn, data); err != nil {
		return nil, err
	}
	return data, nil
}
