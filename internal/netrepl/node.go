// Package netrepl replicates the store over real TCP connections: each
// node hosts one replica and streams committed transactions to its peers
// as length-prefixed, versioned batch frames. It demonstrates that the
// replication protocol (causal delivery of atomic transaction effect
// groups) is independent of the in-process simulator used by the
// evaluation — the same store runs over actual sockets — and that
// invariant preservation needs no runtime coordination: replication stays
// fully asynchronous.
//
// The transport is a streaming design built for throughput:
//
//   - one persistent connection per peer, dialed lazily on the first
//     send and re-established after failures with exponential backoff
//     plus jitter;
//   - a bounded per-peer outbound queue; commits enqueue and return,
//     a dedicated sender goroutine per peer coalesces queued
//     transactions into batch frames (Config.FlushInterval and
//     Config.MaxBatchTxns bound the coalescing window and batch size);
//   - backpressure instead of unbounded memory: when a peer's queue is
//     full the committing transaction blocks until the sender drains
//     (counted in Metrics.BackpressureWaits), never dropping a frame —
//     a causal gap would stall the receiver's dependency queue forever;
//   - acknowledged delivery: the receiver confirms each batch frame after
//     accepting it into its apply pipeline, and the sender counts a frame
//     sent only on ack. A write that succeeds into a socket the peer
//     kills before reading would otherwise be silent loss — the chaos
//     soak (internal/harness) surfaces exactly this under churn;
//   - graceful shutdown: Close stops accepting work and gives every
//     sender Config.DrainTimeout to flush its queue before abandoning
//     the remainder (counted in Metrics.TxnsDropped).
//
// The receive path is a pipelined applier over the sharded replica core.
// There is no per-node lock: decoded transactions route into one bounded
// apply queue per origin, each drained by its own applier goroutine. The
// single applier per origin preserves the origin's commit (FIFO) order;
// appliers for different origins run concurrently and serialise only on
// the store's per-shard locks, with cross-origin causality enforced by
// store.Replica.ApplyExternal's dependency wait. Local transactions (Do,
// Begin) run concurrently with the appliers and with each other under the
// store's own two-phase shard locking.
//
// Delivery is at-least-once — a sender that loses its connection (or an
// ack) mid-frame retries the whole batch — and the apply path
// deduplicates by origin sequence number, so effects apply exactly once.
// Batches may arrive reordered, duplicated, or interleaved with legacy
// single-transaction frames and the replica state still converges.
//
// The original connection-per-transaction demo transport is kept behind
// Config.Legacy for benchmarking (internal/bench measures streaming vs
// legacy throughput) and as a wire-compatibility check: v0 frames decode
// through the same versioned entry point new receivers use.
package netrepl

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ipa/internal/clock"
	"ipa/internal/crdt"
	"ipa/internal/store"
)

// maxFrame caps the size of one accepted frame.
const maxFrame = 64 << 20

// ackMagic is the fixed acknowledgement word the receiver writes back
// after accepting one frame. The protocol is synchronous per connection —
// one frame in flight, one ack — so the word needs no sequence number;
// any mismatch means a corrupt stream and drops the connection.
const ackMagic = 0x41434B31 // "ACK1"

// Config tunes the streaming transport. The zero value selects the
// defaults noted on each field; see DefaultConfig.
type Config struct {
	// FlushInterval is how long a sender waits after the first queued
	// transaction for more to coalesce into the same batch frame.
	// Default 500µs: long enough to batch a commit burst, short enough
	// to keep single-transaction latency in the sub-millisecond range.
	FlushInterval time.Duration
	// MaxBatchTxns caps the transactions per batch frame. Default 256.
	MaxBatchTxns int
	// QueueCap bounds each peer's outbound queue and each origin's
	// inbound apply queue, in transactions. Default 8192. A full
	// outbound queue applies backpressure to committers; a full apply
	// queue withholds the frame ack until it drains. One exemption: a
	// transaction ahead of its origin's FIFO gap moves from the apply
	// queue into the applier's reorder buffer, which — like the
	// simulator's causal delivery queue — is unbounded (bounding it
	// could wedge delivery, since the gap-filling transaction arrives
	// on the same stream). Reordered backlogs still count in Pending.
	QueueCap int
	// DialTimeout bounds one connection attempt. Default 2s.
	DialTimeout time.Duration
	// WriteTimeout bounds one frame write; a peer that accepts the
	// connection but stops reading fails the write instead of blocking
	// the sender (and Close) forever. Default 10s.
	WriteTimeout time.Duration
	// BackoffMin/BackoffMax bound the exponential reconnect backoff
	// (with jitter). Defaults 5ms and 1s.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// DrainTimeout is how long Close lets senders flush outstanding
	// queues before abandoning them. Default 2s.
	DrainTimeout time.Duration
	// Legacy selects the original demo transport: one short-lived
	// connection per transaction per peer, sent synchronously from
	// Commit. Kept for benchmarking against the streaming path.
	Legacy bool
	// WireVersion selects the batch frame encoding this node SENDS:
	// store.WireVersionV2 (the compact binary codec, the default) or
	// store.WireVersionGob (the v1 gob frame) for meshes that still
	// contain pre-v2 receivers. Receiving is always version-agnostic —
	// every node decodes v0, v1, and v2 frames.
	WireVersion int
}

// DefaultConfig returns the streaming transport defaults.
func DefaultConfig() Config {
	return Config{
		FlushInterval: 500 * time.Microsecond,
		MaxBatchTxns:  256,
		QueueCap:      8192,
		DialTimeout:   2 * time.Second,
		WriteTimeout:  10 * time.Second,
		BackoffMin:    5 * time.Millisecond,
		BackoffMax:    time.Second,
		DrainTimeout:  2 * time.Second,
		WireVersion:   store.WireVersionV2,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.FlushInterval <= 0 {
		c.FlushInterval = d.FlushInterval
	}
	if c.MaxBatchTxns <= 0 {
		c.MaxBatchTxns = d.MaxBatchTxns
	}
	if c.QueueCap <= 0 {
		c.QueueCap = d.QueueCap
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = d.DialTimeout
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = d.WriteTimeout
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = d.BackoffMin
	}
	if c.BackoffMax < c.BackoffMin {
		c.BackoffMax = d.BackoffMax
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = d.DrainTimeout
	}
	if c.WireVersion != store.WireVersionGob {
		c.WireVersion = store.WireVersionV2
	}
	return c
}

// Metrics is a point-in-time snapshot of a node's transport counters.
type Metrics struct {
	// Dials counts successful connection establishments; Reconnects is
	// the subset that replaced a previously working connection.
	Dials, Reconnects uint64
	// SendErrors counts failed dial attempts and failed frame writes
	// (each followed by a backoff + retry, so errors are not losses).
	SendErrors uint64
	// FramesSent/TxnsSent/BytesSent cover the outbound path; frames and
	// transactions count only once the peer acknowledged accepting them.
	// The TxnsSent/FramesSent ratio is the achieved batching factor.
	FramesSent, TxnsSent, BytesSent uint64
	// FramesRecv/TxnsRecv/BytesRecv cover the inbound path.
	FramesRecv, TxnsRecv, BytesRecv uint64
	// BackpressureWaits counts commits that blocked on a full peer queue.
	BackpressureWaits uint64
	// TxnsDropped counts transactions abandoned because Close's drain
	// timeout expired before a peer became reachable.
	TxnsDropped uint64
	// QueueDepth is the current total of queued outbound transactions
	// across peers.
	QueueDepth int
	// ApplyDepth is the current total of received transactions queued in
	// the per-origin apply pipeline (accepted but not yet applied).
	ApplyDepth int
}

func (m Metrics) String() string {
	batch := 0.0
	if m.FramesSent > 0 {
		batch = float64(m.TxnsSent) / float64(m.FramesSent)
	}
	return fmt.Sprintf(
		"sent %d txns in %d frames (%.1f txns/frame, %d bytes), recv %d txns in %d frames, "+
			"dials %d (reconnects %d), send errors %d, backpressure waits %d, dropped %d, queue %d, apply queue %d",
		m.TxnsSent, m.FramesSent, batch, m.BytesSent, m.TxnsRecv, m.FramesRecv,
		m.Dials, m.Reconnects, m.SendErrors, m.BackpressureWaits, m.TxnsDropped, m.QueueDepth, m.ApplyDepth)
}

// counters holds the atomically updated parts of Metrics.
type counters struct {
	dials, reconnects               uint64
	sendErrors                      uint64
	framesSent, txnsSent, bytesSent uint64
	framesRecv, txnsRecv, bytesRecv uint64
	backpressureWaits, txnsDropped  uint64
}

// Node hosts one replica of the database and replicates over TCP. It has
// no global lock: local transactions synchronise through the store's
// sharded two-phase locking, and the receive path applies through
// per-origin applier goroutines (see the package comment).
type Node struct {
	id      clock.ReplicaID
	cfg     Config
	cluster *store.Cluster
	replica *store.Replica

	peersMu sync.RWMutex
	peers   map[clock.ReplicaID]*peerConn

	ln        net.Listener
	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
	closeErr  error
	drainDL   atomic.Value // time.Time: deadline for post-Close flushing

	connMu sync.Mutex
	conns  map[net.Conn]struct{} // accepted (inbound) connections

	// applyMu guards appliers: one bounded queue + goroutine per origin,
	// created on the first frame from that origin. applyPending counts
	// transactions accepted into the pipeline and not yet applied (or
	// dropped as duplicates) — the receive-side analogue of the
	// simulator's causal delivery queue length.
	applyMu      sync.Mutex
	appliers     map[clock.ReplicaID]chan store.WireTxn
	applyClosed  bool // set by Close under applyMu: no new appliers
	applyPending atomic.Int64

	// pauseMu/pauseCond gate the appliers — the crash/recovery fault
	// hook. While paused, frames are still received, acknowledged, and
	// queued; nothing applies.
	pauseMu   sync.Mutex
	pauseCond *sync.Cond
	paused    bool

	// blockMu guards blocked: origins whose frames the receive path
	// refuses (the partition fault hook — see BlockOrigin).
	blockMu sync.Mutex
	blocked map[clock.ReplicaID]bool

	m counters
}

// NewNode creates a node with the default streaming configuration,
// listening on addr (use "127.0.0.1:0" for an ephemeral port).
func NewNode(id clock.ReplicaID, addr string) (*Node, error) {
	return NewNodeWithConfig(id, addr, Config{})
}

// NewNodeWithConfig creates a node with an explicit transport
// configuration. The node's replica lives in a single-member cluster; all
// replication flows through the TCP transport.
func NewNodeWithConfig(id clock.ReplicaID, addr string, cfg Config) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netrepl: listen: %w", err)
	}
	n := &Node{
		id:       id,
		cfg:      cfg.withDefaults(),
		cluster:  store.NewSocketCluster(id),
		peers:    map[clock.ReplicaID]*peerConn{},
		ln:       ln,
		closed:   make(chan struct{}),
		conns:    map[net.Conn]struct{}{},
		appliers: map[clock.ReplicaID]chan store.WireTxn{},
		blocked:  map[clock.ReplicaID]bool{},
	}
	n.replica = n.cluster.Replica(id)
	n.pauseCond = sync.NewCond(&n.pauseMu)
	n.cluster.SetOnCommit(n.broadcast)
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's listening address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// ID returns the node's replica identifier.
func (n *Node) ID() clock.ReplicaID { return n.id }

// AddPeer registers a peer to replicate to and starts its sender. Adding
// the same peer id again is a no-op.
func (n *Node) AddPeer(id clock.ReplicaID, addr string) {
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	if _, ok := n.peers[id]; ok {
		return
	}
	p := newPeerConn(n, id, addr)
	n.peers[id] = p
	if !n.cfg.Legacy {
		n.wg.Add(1)
		go p.run()
	}
}

// Do runs fn against the node's replica. There is no node lock any more:
// every replica method fn can call (Begin/Commit transactions, Object,
// Lookup, Clock, CompactAll) is individually safe against the concurrent
// receive path, and transactions two-phase-lock their shards. fn itself
// gets no multi-call atomicity — read related keys inside one
// transaction when a consistent view matters.
func (n *Node) Do(fn func(r *store.Replica)) {
	fn(n.replica)
}

// Begin starts a highly available transaction at the node's replica —
// the runtime backend surface (runtime.Replica). Transactions from many
// goroutines run concurrently with each other and with the receive path:
// the store's shard locks give each transaction a per-key-group
// serialised view, and remote effect groups attach atomically. Always
// commit exactly once. Commit hands the transaction to replication while
// holding its shard locks, and a full outbound queue blocks the
// committer (backpressure, by design; size QueueCap above the driver's
// outstanding load — see DESIGN.md).
func (n *Node) Begin() *store.Txn {
	return n.replica.Begin()
}

// Object returns the CRDT stored at key, creating it with mk when absent.
// The lookup is shard-locked; read the returned object through a
// transaction when the node is live.
func (n *Node) Object(key string, mk func() crdt.CRDT) crdt.CRDT {
	return n.replica.Object(key, mk)
}

// Lookup returns the CRDT stored at key if it exists.
func (n *Node) Lookup(key string) (crdt.CRDT, bool) {
	return n.replica.Lookup(key)
}

// CompactAll lets every CRDT at the node's replica compact metadata below
// the stability horizon, shard by shard — safe while the node serves
// traffic (see store.Replica.CompactAll).
func (n *Node) CompactAll(horizon, frontier clock.Vector) {
	n.replica.CompactAll(horizon, frontier)
}

// SetPaused freezes (or thaws) the node's apply pipeline — the
// crash/recovery fault hook, matching the simulator's: remote frames are
// still received, acknowledged, and queued per origin, but nothing
// applies. Unpausing lets the appliers drain in causal order. Local
// commits are unaffected.
func (n *Node) SetPaused(paused bool) {
	n.pauseMu.Lock()
	n.paused = paused
	n.pauseCond.Broadcast()
	n.pauseMu.Unlock()
	if paused {
		// Kick appliers parked inside a dependency wait so they re-poll
		// their gate, abandon the wait, and park on the pause gate —
		// otherwise a dependency arriving mid-pause would let them apply
		// while the node is "crashed".
		n.replica.WakeExternal()
	}
}

// isPaused reports the pause flag.
func (n *Node) isPaused() bool {
	n.pauseMu.Lock()
	defer n.pauseMu.Unlock()
	return n.paused
}

// pauseWait blocks while the node is paused. It returns false when the
// node closed instead.
func (n *Node) pauseWait() bool {
	n.pauseMu.Lock()
	defer n.pauseMu.Unlock()
	for n.paused {
		select {
		case <-n.closed:
			return false
		default:
		}
		n.pauseCond.Wait()
	}
	return true
}

// BlockOrigin makes the receive path refuse frames whose transactions
// originate from the given replica — the partition fault hook. A refused
// frame's connection drops without an acknowledgement, so the sender
// retries with backoff until the block lifts: delivery stays at-least-once
// and no transaction is lost, exactly the buffered-partition semantics of
// the simulator. Blocking is receive-side because every node streams only
// its own commits, so "frames originating at a" ≡ "the a→n link".
func (n *Node) BlockOrigin(origin clock.ReplicaID, blocked bool) {
	n.blockMu.Lock()
	defer n.blockMu.Unlock()
	if blocked {
		n.blocked[origin] = true
	} else {
		delete(n.blocked, origin)
	}
}

func (n *Node) originBlocked(origin clock.ReplicaID) bool {
	n.blockMu.Lock()
	defer n.blockMu.Unlock()
	return n.blocked[origin]
}

// Stats returns a snapshot of the node's transport metrics.
func (n *Node) Stats() Metrics {
	m := Metrics{
		Dials:             atomic.LoadUint64(&n.m.dials),
		Reconnects:        atomic.LoadUint64(&n.m.reconnects),
		SendErrors:        atomic.LoadUint64(&n.m.sendErrors),
		FramesSent:        atomic.LoadUint64(&n.m.framesSent),
		TxnsSent:          atomic.LoadUint64(&n.m.txnsSent),
		BytesSent:         atomic.LoadUint64(&n.m.bytesSent),
		FramesRecv:        atomic.LoadUint64(&n.m.framesRecv),
		TxnsRecv:          atomic.LoadUint64(&n.m.txnsRecv),
		BytesRecv:         atomic.LoadUint64(&n.m.bytesRecv),
		BackpressureWaits: atomic.LoadUint64(&n.m.backpressureWaits),
		TxnsDropped:       atomic.LoadUint64(&n.m.txnsDropped),
		ApplyDepth:        int(n.applyPending.Load()),
	}
	n.peersMu.RLock()
	for _, p := range n.peers {
		m.QueueDepth += len(p.ch)
	}
	n.peersMu.RUnlock()
	return m
}

// broadcast ships one committed transaction to every peer. Called from
// Commit under the committing transaction's tag window, so per-peer
// enqueue order matches the origin's sequence order. In streaming mode it
// enqueues and returns; in legacy mode it dials and sends synchronously.
func (n *Node) broadcast(w store.WireTxn) {
	if n.cfg.Legacy {
		n.legacyBroadcast(w)
		return
	}
	n.peersMu.RLock()
	defer n.peersMu.RUnlock()
	for _, p := range n.peers {
		p.enqueue(w)
	}
}

// legacyBroadcast is the original demo transport: one short-lived
// connection per transaction per peer, no retries.
func (n *Node) legacyBroadcast(w store.WireTxn) {
	data, err := store.EncodeTxn(w)
	if err != nil {
		atomic.AddUint64(&n.m.sendErrors, 1)
		return
	}
	n.peersMu.RLock()
	defer n.peersMu.RUnlock()
	for _, p := range n.peers {
		conn, err := net.DialTimeout("tcp", p.addr, n.cfg.DialTimeout)
		if err != nil {
			atomic.AddUint64(&n.m.sendErrors, 1)
			continue
		}
		atomic.AddUint64(&n.m.dials, 1)
		if err := writeFrame(conn, data); err != nil {
			atomic.AddUint64(&n.m.sendErrors, 1)
		} else {
			atomic.AddUint64(&n.m.framesSent, 1)
			atomic.AddUint64(&n.m.txnsSent, 1)
			atomic.AddUint64(&n.m.bytesSent, uint64(len(data)+4))
		}
		conn.Close()
	}
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
				continue
			}
		}
		// Register under connMu, re-checking closed: Close sweeps the
		// map after closing n.closed, so a connection accepted in that
		// window must be closed here or nothing ever closes it (and
		// Close would wait on its handler forever). The wg.Add must also
		// happen inside the critical section: Close holds connMu for its
		// sweep before it waits, so either this handler is registered (and
		// counted) before the sweep, or the closed re-check above fires —
		// an Add racing a started Wait could otherwise let Close return
		// while the handler still runs (and lets DropConnections during
		// Close observe a connection that was never registered).
		n.connMu.Lock()
		select {
		case <-n.closed:
			n.connMu.Unlock()
			conn.Close()
			return
		default:
		}
		n.conns[conn] = struct{}{}
		n.wg.Add(1)
		n.connMu.Unlock()
		go n.handle(conn)
	}
}

func (n *Node) handle(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		n.connMu.Lock()
		delete(n.conns, conn)
		n.connMu.Unlock()
		conn.Close()
	}()
	// One pooled read buffer per connection, reused for every frame on
	// the stream: the receive path performs no per-frame buffer
	// allocation (DecodeFrame copies out everything it keeps, so the
	// buffer is free to be overwritten by the next frame).
	bufp := frameBufPool.Get().(*[]byte)
	defer frameBufPool.Put(bufp)
	for {
		data, err := readFrame(conn, bufp)
		if err != nil {
			return
		}
		txns, err := store.DecodeFrame(data)
		if err != nil {
			return // corrupt stream: drop the connection, sender retries
		}
		// Partition fault: refuse the frame without acking — the sender
		// keeps the batch and retries with backoff until the block lifts.
		// (A frame carries one origin's transactions: nodes stream only
		// their own commits.)
		if len(txns) > 0 && n.originBlocked(txns[0].Origin) {
			return
		}
		atomic.AddUint64(&n.m.framesRecv, 1)
		atomic.AddUint64(&n.m.bytesRecv, uint64(len(data)+4))
		// Route each transaction into its origin's apply queue. A full
		// queue blocks here — and thereby withholds the ack, pushing
		// backpressure onto the sender, which will retry the batch (the
		// apply path deduplicates).
		for _, w := range txns {
			n.applyPending.Add(1)
			if !n.enqueueApply(w) {
				n.applyPending.Add(-1)
				return // node closing
			}
		}
		atomic.AddUint64(&n.m.txnsRecv, uint64(len(txns)))
		// Acknowledge once the batch is accepted into the apply pipeline:
		// the sender may now forget it. Applying happens asynchronously —
		// the pipeline is never torn down before the node itself, so
		// acceptance is as durable as the old apply-then-ack (neither
		// survives Close). Legacy senders never read acks; the write then
		// fails or lands in a buffer nobody drains, both harmless.
		if err := writeAck(conn); err != nil {
			return
		}
	}
}

// enqueueApply hands one received transaction to its origin's applier,
// creating queue and goroutine on first contact. It returns false when
// the node is closing.
func (n *Node) enqueueApply(w store.WireTxn) bool {
	n.applyMu.Lock()
	ch, ok := n.appliers[w.Origin]
	if !ok {
		// applyClosed is set by Close under this mutex before it waits on
		// n.wg, so the Add below cannot race the Wait.
		if n.applyClosed {
			n.applyMu.Unlock()
			return false
		}
		ch = make(chan store.WireTxn, n.cfg.QueueCap)
		n.appliers[w.Origin] = ch
		n.wg.Add(1)
		go n.applyLoop(w.Origin, ch)
	}
	n.applyMu.Unlock()
	select {
	case ch <- w:
		return true
	case <-n.closed:
		return false
	}
}

// applyLoop drains one origin's apply queue — per-origin FIFO is what
// store.Replica.ApplyExternal requires of its callers. The streaming
// sender delivers in order, but separate connections (reconnect retries,
// legacy senders, hand-crafted test frames) may interleave out of
// sequence, so a local reorder buffer holds transactions ahead of the
// origin's FIFO gap instead of blocking the queue on them.
//
// Cross-origin causal order is ApplyExternal's dependency wait; the
// blocked applier holds no locks while waiting, and the dependencies it
// waits for arrive on other origins' queues, so the happens-before order
// (acyclic by construction) guarantees progress.
func (n *Node) applyLoop(origin clock.ReplicaID, ch chan store.WireTxn) {
	defer n.wg.Done()
	giveUp := func() bool {
		select {
		case <-n.closed:
			return true
		default:
			return false
		}
	}
	// next is the origin's delivered high-water mark. This goroutine is
	// the only writer of the replica's clock entry for origin, so the
	// local copy stays authoritative.
	next := n.replica.Clock().Get(origin)
	buf := map[uint64]store.WireTxn{} // FIFO reorder buffer: FirstSeq → txn
	// Transactions still held in the reorder buffer when the node closes
	// die with it; they were acknowledged, so account for them (Close
	// drains the dead channels the same way once the appliers exited).
	defer func() {
		if dropped := uint64(len(buf)); dropped > 0 {
			atomic.AddUint64(&n.m.txnsDropped, dropped)
			n.applyPending.Add(-int64(dropped))
		}
	}()
	for {
		select {
		case w := <-ch:
			if w.FirstSeq > next {
				// FIFO gap: hold the transaction until the origin's prefix
				// arrives on a later frame.
				if _, dup := buf[w.FirstSeq]; dup {
					n.replica.NoteDuplicate()
					n.applyPending.Add(-1)
				} else {
					buf[w.FirstSeq] = w
				}
				continue
			}
			if !n.applyOne(w, giveUp) {
				return // node closed before the transaction was processed
			}
			if w.LastSeq > next {
				next = w.LastSeq
			}
			// The gap may have closed for buffered successors.
			for {
				w2, ok := buf[next]
				if !ok {
					break
				}
				delete(buf, next)
				if !n.applyOne(w2, giveUp) {
					return
				}
				next = w2.LastSeq
			}
		case <-n.closed:
			return
		}
	}
}

// applyOne applies one in-FIFO-order transaction (or drops it as a
// duplicate), honouring the pause gate, and settles its applyPending
// slot. A pause engaging while the transaction waits for a causal
// dependency aborts the wait and re-parks on the pause gate, so nothing
// applies mid-pause even when the dependency arrives during it. It
// returns false only when the node closed before the transaction was
// processed — that transaction is then counted dropped.
func (n *Node) applyOne(w store.WireTxn, giveUp func() bool) bool {
	gate := func() bool { return giveUp() || n.isPaused() }
	for {
		if !n.pauseWait() {
			break // closed while paused
		}
		if n.replica.ApplyExternal(w, gate) {
			n.applyPending.Add(-1)
			return true
		}
		if giveUp() {
			break
		}
		// ApplyExternal declined without a close: either a duplicate
		// (the delivered cut already covers it — processed) or a pause
		// aborted the dependency wait (retry after the pause lifts).
		if n.replica.Clock().Get(w.Origin) >= w.LastSeq {
			n.applyPending.Add(-1)
			return true
		}
	}
	n.applyPending.Add(-1)
	atomic.AddUint64(&n.m.txnsDropped, 1)
	return false
}

// writeAck confirms one accepted frame.
func writeAck(conn net.Conn) error {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], ackMagic)
	_, err := conn.Write(buf[:])
	return err
}

// readAck consumes one acknowledgement within the deadline.
func readAck(conn net.Conn, deadline time.Time) error {
	if err := conn.SetReadDeadline(deadline); err != nil {
		return err
	}
	var buf [4]byte
	if _, err := io.ReadFull(conn, buf[:]); err != nil {
		return err
	}
	if binary.BigEndian.Uint32(buf[:]) != ackMagic {
		return fmt.Errorf("netrepl: bad ack word %x", buf)
	}
	return nil
}

// DropConnections abruptly closes every accepted inbound connection — the
// chaos hook for connection churn. Peers streaming to this node see their
// next write fail and re-dial with backoff; delivery is at-least-once, so
// retried batches deduplicate and no transaction is lost. The listener
// stays up, so reconnects succeed immediately. It returns the number of
// connections killed.
//
// Racing Close is allowed: once the node is closing, Close owns the
// teardown — it sweeps the same map under connMu and then waits for the
// handlers — so DropConnections backs off and reports zero rather than
// re-closing connections mid-drain (peers in their ack/retry loop would
// count the kill against the dying node and re-send into a closed
// listener).
func (n *Node) DropConnections() int {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	select {
	case <-n.closed:
		return 0
	default:
	}
	for c := range n.conns {
		c.Close()
	}
	return len(n.conns)
}

// Pending reports the number of received transactions waiting in the
// apply pipeline (for their causal dependencies, a pause to lift, or an
// applier slot).
func (n *Node) Pending() int {
	return int(n.applyPending.Load())
}

// Clock returns the replica's delivered causal cut.
func (n *Node) Clock() clock.Vector {
	return n.replica.Clock()
}

// Close drains the outbound queues (for up to Config.DrainTimeout), stops
// the listener, senders, and appliers, and waits for in-flight handlers.
// Transactions still queued in the apply pipeline are dropped with the
// node. Safe to call more than once.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		n.drainDL.Store(time.Now().Add(n.cfg.DrainTimeout))
		close(n.closed)
		n.closeErr = n.ln.Close()
		// Senders flush on their own; inbound connections would block
		// forever on read (peers hold them open), so close them.
		n.connMu.Lock()
		for c := range n.conns {
			c.Close()
		}
		n.connMu.Unlock()
		// Stop applier creation (see enqueueApply), then wake appliers
		// parked on the pause gate or on a causal dependency so they
		// observe the close.
		n.applyMu.Lock()
		n.applyClosed = true
		n.applyMu.Unlock()
		n.pauseMu.Lock()
		n.pauseCond.Broadcast()
		n.pauseMu.Unlock()
		n.replica.WakeExternal()
		n.wg.Wait()
		// Handlers and appliers are gone; transactions still sitting in
		// the dead apply queues were acknowledged and are now lost with
		// the node — account for them so the metrics settle.
		n.applyMu.Lock()
		for _, ch := range n.appliers {
			for {
				select {
				case <-ch:
					atomic.AddUint64(&n.m.txnsDropped, 1)
					n.applyPending.Add(-1)
					continue
				default:
				}
				break
			}
		}
		n.applyMu.Unlock()
	})
	return n.closeErr
}

// drainDeadline reports the post-Close flush deadline (zero before Close).
func (n *Node) drainDeadline() time.Time {
	if v := n.drainDL.Load(); v != nil {
		return v.(time.Time)
	}
	return time.Time{}
}

// writeFrame writes one length-prefixed frame.
func writeFrame(conn net.Conn, data []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(data)
	return err
}

// frameBufPool recycles receive buffers across connections. A handler
// checks one out for the life of its connection (frames on a stream
// reuse it), so the pool's job is bounding memory across connection
// churn rather than per-frame recycling.
var frameBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 16<<10)
		return &b
	},
}

// readFrame reads one length-prefixed frame into *bufp (growing it when
// the frame exceeds its capacity), refusing absurd sizes. The returned
// slice aliases *bufp and is valid until the next readFrame call with
// the same buffer.
func readFrame(conn net.Conn, bufp *[]byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > maxFrame {
		return nil, fmt.Errorf("netrepl: frame of %d bytes exceeds limit", size)
	}
	if uint32(cap(*bufp)) < size {
		*bufp = make([]byte, size)
	}
	data := (*bufp)[:size]
	if _, err := io.ReadFull(conn, data); err != nil {
		return nil, err
	}
	return data, nil
}
