// Package netrepl replicates the store over real TCP connections: each
// node hosts one replica and ships committed transactions to its peers as
// length-prefixed gob frames. It demonstrates that the replication
// protocol (causal delivery of atomic transaction effect groups) is
// independent of the in-process simulator used by the evaluation — the
// same store runs over actual sockets.
//
// The transport is deliberately simple: one short-lived connection per
// transaction, unbounded retries left to the caller. A production
// deployment would pool connections and persist the log; the protocol
// semantics (exactly-once, causal order via the receiver's delivery
// queue) already tolerate reordering across connections.
package netrepl

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"ipa/internal/clock"
	"ipa/internal/store"
	"ipa/internal/wan"
)

// Node hosts one replica of the database and replicates over TCP.
type Node struct {
	id      clock.ReplicaID
	cluster *store.Cluster

	mu    sync.Mutex
	peers map[clock.ReplicaID]string // peer id -> address

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}

	// Delivered counts transactions received from peers (diagnostics).
	Delivered uint64
	// SendErrors counts failed peer sends (the caller may retry).
	SendErrors uint64
}

// NewNode creates a node listening on addr (use "127.0.0.1:0" for an
// ephemeral port). The node's replica lives in a single-member cluster;
// all replication flows through the TCP transport.
func NewNode(id clock.ReplicaID, addr string) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netrepl: listen: %w", err)
	}
	// A single-member cluster: the simulator inside never carries
	// messages; it only provides the clock the store API needs.
	cluster := store.NewCluster(wan.NewSim(0), wan.NewLatency(0), []clock.ReplicaID{id})
	n := &Node{
		id:      id,
		cluster: cluster,
		peers:   map[clock.ReplicaID]string{},
		ln:      ln,
		closed:  make(chan struct{}),
	}
	cluster.SetOnCommit(n.broadcast)
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's listening address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// ID returns the node's replica identifier.
func (n *Node) ID() clock.ReplicaID { return n.id }

// AddPeer registers a peer to replicate to.
func (n *Node) AddPeer(id clock.ReplicaID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[id] = addr
}

// Do runs fn against the node's replica under the node lock. All local
// reads and transactions must go through Do: the TCP receive path applies
// remote transactions concurrently.
func (n *Node) Do(fn func(r *store.Replica)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	fn(n.cluster.Replica(n.id))
}

// broadcast ships one committed transaction to every peer. Called from
// Commit, which runs under the node lock via Do.
func (n *Node) broadcast(w store.WireTxn) {
	data, err := store.EncodeTxn(w)
	if err != nil {
		n.SendErrors++
		return
	}
	for _, addr := range n.peers {
		if err := send(addr, data); err != nil {
			n.SendErrors++
		}
	}
}

func send(addr string, data []byte) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err = conn.Write(data)
	return err
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
				continue
			}
		}
		n.wg.Add(1)
		go n.handle(conn)
	}
}

func (n *Node) handle(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(hdr[:])
		if size > 64<<20 {
			return // refuse absurd frames
		}
		data := make([]byte, size)
		if _, err := io.ReadFull(conn, data); err != nil {
			return
		}
		w, err := store.DecodeTxn(data)
		if err != nil {
			return
		}
		n.mu.Lock()
		n.cluster.Deliver(n.id, w)
		n.Delivered++
		n.mu.Unlock()
	}
}

// Pending reports the size of the causal delivery queue (transactions
// waiting for their dependencies).
func (n *Node) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cluster.Replica(n.id).PendingCount()
}

// Clock returns the replica's delivered causal cut.
func (n *Node) Clock() clock.Vector {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cluster.Replica(n.id).Clock()
}

// Close stops the listener and waits for in-flight handlers.
func (n *Node) Close() error {
	close(n.closed)
	err := n.ln.Close()
	n.wg.Wait()
	return err
}
