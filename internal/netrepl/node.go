// Package netrepl replicates the store over real TCP connections: each
// node hosts one replica and streams committed transactions to its peers
// as length-prefixed, versioned batch frames. It demonstrates that the
// replication protocol (causal delivery of atomic transaction effect
// groups) is independent of the in-process simulator used by the
// evaluation — the same store runs over actual sockets — and that
// invariant preservation needs no runtime coordination: replication stays
// fully asynchronous.
//
// The transport is a streaming design built for throughput:
//
//   - one persistent connection per peer, dialed lazily on the first
//     send and re-established after failures with exponential backoff
//     plus jitter;
//   - a bounded per-peer outbound queue; commits enqueue and return,
//     a dedicated sender goroutine per peer coalesces queued
//     transactions into batch frames (Config.FlushInterval and
//     Config.MaxBatchTxns bound the coalescing window and batch size);
//   - backpressure instead of unbounded memory: when a peer's queue is
//     full the committing transaction blocks until the sender drains
//     (counted in Metrics.BackpressureWaits), never dropping a frame —
//     a causal gap would stall the receiver's dependency queue forever;
//   - acknowledged delivery: the receiver confirms each batch frame after
//     accepting it into its apply pipeline, and the sender counts a frame
//     sent only on ack. A write that succeeds into a socket the peer
//     kills before reading would otherwise be silent loss — the chaos
//     soak (internal/harness) surfaces exactly this under churn;
//   - graceful shutdown: Close stops accepting work and gives every
//     sender Config.DrainTimeout to flush its queue before abandoning
//     the remainder (counted in Metrics.TxnsDropped).
//
// The receive path is a pipelined applier over the sharded replica core.
// There is no per-node lock: decoded transactions route into one bounded
// apply queue per origin, each drained by its own applier goroutine. The
// single applier per origin preserves the origin's commit (FIFO) order;
// appliers for different origins run concurrently and serialise only on
// the store's per-shard locks, with cross-origin causality enforced by
// store.Replica.ApplyExternal's dependency wait. Local transactions (Do,
// Begin) run concurrently with the appliers and with each other under the
// store's own two-phase shard locking.
//
// Delivery is at-least-once — a sender that loses its connection (or an
// ack) mid-frame retries the whole batch — and the apply path
// deduplicates by origin sequence number, so effects apply exactly once.
// Batches may arrive reordered, duplicated, or interleaved with legacy
// single-transaction frames and the replica state still converges.
//
// The original connection-per-transaction demo transport is kept behind
// Config.Legacy for benchmarking (internal/bench measures streaming vs
// legacy throughput) and as a wire-compatibility check: v0 frames decode
// through the same versioned entry point new receivers use.
package netrepl

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ipa/internal/clock"
	"ipa/internal/crdt"
	"ipa/internal/store"
)

// defaultMaxFrame is the default cap on the size of one frame
// (Config.MaxFrame).
const defaultMaxFrame = 64 << 20

// State-transfer request magics. Both protocols share the replication
// listener: a frame whose payload starts with one of these words is a
// one-shot request, served on the same connection, instead of a batch.
// Neither collides with the batch codec ("IPAB" + version).
const (
	// tailMagic + an encoded vector asks for the node's own-origin WAL
	// records above that cut, streamed back as ordinary batch frames
	// until EOF — the op tail a joining site uses to close the gap
	// between its adopted snapshot and live replication.
	tailMagic = "IPAT"
	// joinMagic asks for a full state snapshot (one length-prefixed
	// blob), the donor side of bootstrap.
	joinMagic = "IPAJ"
)

// ackMagic is the fixed acknowledgement word the receiver writes back
// after accepting one frame. The protocol is synchronous per connection —
// one frame in flight, one ack — so the word needs no sequence number;
// any mismatch means a corrupt stream and drops the connection.
const ackMagic = 0x41434B31 // "ACK1"

// Config tunes the streaming transport. The zero value selects the
// defaults noted on each field; see DefaultConfig.
type Config struct {
	// FlushInterval is how long a sender waits after the first queued
	// transaction for more to coalesce into the same batch frame.
	// Default 500µs: long enough to batch a commit burst, short enough
	// to keep single-transaction latency in the sub-millisecond range.
	FlushInterval time.Duration
	// MaxBatchTxns caps the transactions per batch frame. Default 256.
	MaxBatchTxns int
	// QueueCap bounds each peer's outbound queue and each origin's
	// inbound apply queue, in transactions. Default 8192. A full
	// outbound queue applies backpressure to committers; a full apply
	// queue withholds the frame ack until it drains. One exemption: a
	// transaction ahead of its origin's FIFO gap moves from the apply
	// queue into the applier's reorder buffer, which — like the
	// simulator's causal delivery queue — is unbounded (bounding it
	// could wedge delivery, since the gap-filling transaction arrives
	// on the same stream). Reordered backlogs still count in Pending.
	QueueCap int
	// DialTimeout bounds one connection attempt. Default 2s.
	DialTimeout time.Duration
	// WriteTimeout bounds one frame write; a peer that accepts the
	// connection but stops reading fails the write instead of blocking
	// the sender (and Close) forever. Default 10s.
	WriteTimeout time.Duration
	// BackoffMin/BackoffMax bound the exponential reconnect backoff
	// (with jitter). Defaults 5ms and 1s.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// DrainTimeout is how long Close lets senders flush outstanding
	// queues before abandoning them. Default 2s.
	DrainTimeout time.Duration
	// Legacy selects the original demo transport: one short-lived
	// connection per transaction per peer, sent synchronously from
	// Commit. Kept for benchmarking against the streaming path.
	Legacy bool
	// WireVersion selects the batch frame encoding this node SENDS:
	// store.WireVersionV2 (the compact binary codec, the default) or
	// store.WireVersionGob (the v1 gob frame) for meshes that still
	// contain pre-v2 receivers. Receiving is always version-agnostic —
	// every node decodes v0, v1, and v2 frames.
	WireVersion int
	// DataDir, when non-empty, makes the node durable: committed and
	// received transactions append to a write-ahead log under it before
	// they are acknowledged (group commit — see internal/store's WAL),
	// and periodic snapshots bound replay. A node restarted with the
	// same DataDir recovers its replica from snapshot + log. Requires
	// the streaming transport (incompatible with Legacy: the legacy
	// path has no ack to anchor the durability contract to).
	DataDir string
	// MaxFrame caps the size of one frame, sent or accepted. A single
	// transaction that encodes above it is undeliverable (see
	// DESIGN.md, "Oversized transactions"). Default 64 MiB.
	MaxFrame int
	// SnapshotEvery is how many WAL bytes accumulate between snapshots;
	// each snapshot lets the log truncate below the stability horizon.
	// Checked on CompactAll (the stability driver's cadence).
	// Default 4 MiB.
	SnapshotEvery int64
	// SegmentSize is the WAL's segment rotation threshold in bytes
	// (default 8 MiB). Truncation deletes whole sealed segments, so
	// smaller segments bound recovery replay more tightly at the cost
	// of more files. Zero takes the log's default.
	SegmentSize int64
	// StallWarn is how long a received transaction may wait for a
	// causal dependency before its origin is declared stalled: logged
	// once per origin and counted in Metrics.StalledOrigins. A stall
	// that never clears means the dependency will never arrive — an
	// oversized transaction was dropped at the sender, or its origin's
	// WAL is gone — and the unstick path is state transfer
	// (decommission + rejoin from a donor snapshot). Default 10s.
	StallWarn time.Duration
}

// DefaultConfig returns the streaming transport defaults.
func DefaultConfig() Config {
	return Config{
		FlushInterval: 500 * time.Microsecond,
		MaxBatchTxns:  256,
		QueueCap:      8192,
		DialTimeout:   2 * time.Second,
		WriteTimeout:  10 * time.Second,
		BackoffMin:    5 * time.Millisecond,
		BackoffMax:    time.Second,
		DrainTimeout:  2 * time.Second,
		WireVersion:   store.WireVersionV2,
		MaxFrame:      defaultMaxFrame,
		SnapshotEvery: 4 << 20,
		StallWarn:     10 * time.Second,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.FlushInterval <= 0 {
		c.FlushInterval = d.FlushInterval
	}
	if c.MaxBatchTxns <= 0 {
		c.MaxBatchTxns = d.MaxBatchTxns
	}
	if c.QueueCap <= 0 {
		c.QueueCap = d.QueueCap
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = d.DialTimeout
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = d.WriteTimeout
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = d.BackoffMin
	}
	if c.BackoffMax < c.BackoffMin {
		c.BackoffMax = d.BackoffMax
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = d.DrainTimeout
	}
	if c.WireVersion != store.WireVersionGob {
		c.WireVersion = store.WireVersionV2
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = d.MaxFrame
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = d.SnapshotEvery
	}
	if c.StallWarn <= 0 {
		c.StallWarn = d.StallWarn
	}
	return c
}

// Metrics is a point-in-time snapshot of a node's transport counters.
type Metrics struct {
	// Dials counts successful connection establishments; Reconnects is
	// the subset that replaced a previously working connection.
	Dials, Reconnects uint64
	// SendErrors counts failed dial attempts and failed frame writes
	// (each followed by a backoff + retry, so errors are not losses).
	SendErrors uint64
	// FramesSent/TxnsSent/BytesSent cover the outbound path; frames and
	// transactions count only once the peer acknowledged accepting them.
	// The TxnsSent/FramesSent ratio is the achieved batching factor.
	FramesSent, TxnsSent, BytesSent uint64
	// FramesRecv/TxnsRecv/BytesRecv cover the inbound path.
	FramesRecv, TxnsRecv, BytesRecv uint64
	// BackpressureWaits counts commits that blocked on a full peer queue.
	BackpressureWaits uint64
	// TxnsDropped counts transactions abandoned because Close's drain
	// timeout expired before a peer became reachable.
	TxnsDropped uint64
	// QueueDepth is the current total of queued outbound transactions
	// across peers.
	QueueDepth int
	// ApplyDepth is the current total of received transactions queued in
	// the per-origin apply pipeline (accepted but not yet applied).
	ApplyDepth int
	// WALAppends/WALSyncs/WALBytes cover the write-ahead log (all zero
	// on a memory-only node). WALSyncs under WALAppends is the group
	// commit working: many records per fsync.
	WALAppends, WALSyncs, WALBytes uint64
	// WALSegments is the current on-disk segment count (grows with
	// traffic, shrinks when snapshots let the log truncate).
	WALSegments int
	// Snapshots counts state snapshots written (recovery replays from
	// the latest one).
	Snapshots uint64
	// StalledOrigins is the number of origins currently stalled on a
	// causal gap older than Config.StallWarn — see Config.StallWarn for
	// what a persistent stall means and the unstick path.
	StalledOrigins int
}

func (m Metrics) String() string {
	batch := 0.0
	if m.FramesSent > 0 {
		batch = float64(m.TxnsSent) / float64(m.FramesSent)
	}
	s := fmt.Sprintf(
		"sent %d txns in %d frames (%.1f txns/frame, %d bytes), recv %d txns in %d frames, "+
			"dials %d (reconnects %d), send errors %d, backpressure waits %d, dropped %d, queue %d, apply queue %d",
		m.TxnsSent, m.FramesSent, batch, m.BytesSent, m.TxnsRecv, m.FramesRecv,
		m.Dials, m.Reconnects, m.SendErrors, m.BackpressureWaits, m.TxnsDropped, m.QueueDepth, m.ApplyDepth)
	if m.WALAppends > 0 || m.Snapshots > 0 {
		s += fmt.Sprintf(", wal %d appends in %d syncs (%d bytes, %d segments), snapshots %d",
			m.WALAppends, m.WALSyncs, m.WALBytes, m.WALSegments, m.Snapshots)
	}
	if m.StalledOrigins > 0 {
		s += fmt.Sprintf(", STALLED origins %d", m.StalledOrigins)
	}
	return s
}

// counters holds the atomically updated parts of Metrics.
type counters struct {
	dials, reconnects               uint64
	sendErrors                      uint64
	framesSent, txnsSent, bytesSent uint64
	framesRecv, txnsRecv, bytesRecv uint64
	backpressureWaits, txnsDropped  uint64
}

// Node hosts one replica of the database and replicates over TCP. It has
// no global lock: local transactions synchronise through the store's
// sharded two-phase locking, and the receive path applies through
// per-origin applier goroutines (see the package comment).
type Node struct {
	id      clock.ReplicaID
	cfg     Config
	cluster *store.Cluster
	replica *store.Replica

	peersMu sync.RWMutex
	peers   map[clock.ReplicaID]*peerConn

	ln        net.Listener
	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
	closeErr  error
	drainDL   atomic.Value // time.Time: deadline for post-Close flushing

	connMu sync.Mutex
	conns  map[net.Conn]struct{} // accepted (inbound) connections

	// applyMu guards appliers: one bounded queue + goroutine per origin,
	// created on the first frame from that origin. applyPending counts
	// transactions accepted into the pipeline and not yet applied (or
	// dropped as duplicates) — the receive-side analogue of the
	// simulator's causal delivery queue length.
	applyMu      sync.Mutex
	appliers     map[clock.ReplicaID]chan store.WireTxn
	applyClosed  bool // set by Close under applyMu: no new appliers
	applyPending atomic.Int64

	// pauseMu/pauseCond gate the appliers — the crash/recovery fault
	// hook. While paused, frames are still received, acknowledged, and
	// queued; nothing applies.
	pauseMu   sync.Mutex
	pauseCond *sync.Cond
	paused    bool

	// blockMu guards blocked: origins whose frames the receive path
	// refuses (the partition fault hook — see BlockOrigin).
	blockMu sync.Mutex
	blocked map[clock.ReplicaID]bool

	// Durability (nil/zero on a memory-only node). wal is the node's
	// write-ahead log; walEnc builds the single-transaction records the
	// local commit hook appends — the hook runs under the committing
	// transaction's tag window, which serialises the encoder. reoffer
	// holds own-origin records recovered from the log; AddPeer replays
	// them into each new peer's queue ahead of live traffic, closing
	// any gap the crash opened at peers that had not yet received them.
	wal     *store.WAL
	walEnc  *store.FrameEncoder
	dataDir string
	reoffer []store.WireTxn
	// snapMu serialises snapshot writes; snapBase is the WAL byte count
	// at the last snapshot (the SnapshotEvery trigger).
	snapMu    sync.Mutex
	snapBase  uint64
	snapshots atomic.Uint64
	// walFailOnce bounds the durability-lost log line; the WAL error
	// itself is sticky (no further appends succeed).
	walFailOnce sync.Once

	// stallMu guards stalled: origins whose apply queue has waited on a
	// causal dependency for longer than Config.StallWarn (satellite of
	// the oversized-transaction drop: the gap may never close).
	stallMu sync.Mutex
	stalled map[clock.ReplicaID]bool

	m counters
}

// NewNode creates a node with the default streaming configuration,
// listening on addr (use "127.0.0.1:0" for an ephemeral port).
func NewNode(id clock.ReplicaID, addr string) (*Node, error) {
	return NewNodeWithConfig(id, addr, Config{})
}

// NewNodeWithConfig creates a node with an explicit transport
// configuration. The node's replica lives in a single-member cluster; all
// replication flows through the TCP transport.
//
// With Config.DataDir set the node is durable, and a restart with the
// same directory RECOVERS the site: the latest snapshot restores the
// bulk of the state, then every write-ahead-log record re-applies
// through the same causal delivery path live replication uses (the
// snapshot's cut deduplicates the overlap). Own-origin records found in
// the log are also kept for re-offer: AddPeer replays them to each peer
// ahead of new commits, so a peer that was never sent them (the origin
// crashed between fsync and broadcast) still converges.
func NewNodeWithConfig(id clock.ReplicaID, addr string, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Legacy && cfg.DataDir != "" {
		return nil, fmt.Errorf("netrepl: DataDir requires the streaming transport: the legacy path acknowledges nothing, so there is no ack to anchor the fsync-before-ack contract to")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netrepl: listen: %w", err)
	}
	n := &Node{
		id:       id,
		cfg:      cfg,
		cluster:  store.NewSocketCluster(id),
		peers:    map[clock.ReplicaID]*peerConn{},
		ln:       ln,
		closed:   make(chan struct{}),
		conns:    map[net.Conn]struct{}{},
		appliers: map[clock.ReplicaID]chan store.WireTxn{},
		blocked:  map[clock.ReplicaID]bool{},
		stalled:  map[clock.ReplicaID]bool{},
	}
	n.replica = n.cluster.Replica(id)
	n.pauseCond = sync.NewCond(&n.pauseMu)
	var leftovers []store.WireTxn
	if cfg.DataDir != "" {
		var err error
		leftovers, err = n.recover()
		if err != nil {
			ln.Close()
			return nil, err
		}
	}
	n.cluster.SetOnCommitSync(n.broadcast)
	n.wg.Add(1)
	go n.acceptLoop()
	if n.cfg.StallWarn > 0 {
		n.wg.Add(1)
		go n.stallTicker()
	}
	// Logged records whose causal dependencies never reached the disk
	// (the crash hit between receiving a transaction and receiving what
	// it depends on) re-enter the live apply pipeline and wait there;
	// the dependency's origin never saw our ack, so it retries.
	for _, w := range leftovers {
		n.accept(w)
	}
	return n, nil
}

// recover restores the replica from the data directory: snapshot first,
// then a synchronous causal replay of the write-ahead log. It returns
// the records it could not apply (dependencies missing from disk); the
// caller routes those through the live apply pipeline. Must run before
// the node accepts commits or frames: replay of own-origin records and
// the event-tag counter bump both race local commits.
func (n *Node) recover() ([]store.WireTxn, error) {
	n.dataDir = n.cfg.DataDir
	n.walEnc = store.NewFrameEncoder(store.WireVersionV2)
	if snap, ok := store.ReadSnapshotFile(n.dataDir); ok && snap.Replica == n.id {
		n.replica.RestoreSnapshot(snap)
	}
	var replayed []store.WireTxn
	wal, err := store.OpenWAL(filepath.Join(n.dataDir, "wal"), func(frame []byte, txns []store.WireTxn) error {
		replayed = append(replayed, txns...)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("netrepl: recover %s: %w", n.id, err)
	}
	wal.SetSegmentSize(n.cfg.SegmentSize)
	n.wal = wal
	// The log holds own-origin commits past the snapshot's cut (commits
	// fsync before Commit returns, snapshots are periodic); new commits
	// must not reuse their sequence numbers.
	var maxOwn uint64
	for i := range replayed {
		if replayed[i].Origin == n.id {
			n.reoffer = append(n.reoffer, replayed[i])
			if replayed[i].LastSeq > maxOwn {
				maxOwn = replayed[i].LastSeq
			}
		}
	}
	n.replica.EnsureSeq(maxOwn)
	// Causal replay: the log is in append order, which is NOT causal
	// order (a record is logged before it is applied, so it can precede
	// its dependencies on disk). Sweep until a pass applies nothing:
	// each pass applies every record whose origin-FIFO position and
	// dependencies the previous passes satisfied. Own-origin records
	// always drain — anything they depend on was applied (hence logged)
	// before they were, and fsync loss is a suffix of append order.
	tryOnly := func() bool { return true }
	pending := replayed
	for len(pending) > 0 {
		next := pending[:0]
		for _, w := range pending {
			if !n.replica.ApplyExternal(w, tryOnly) &&
				n.replica.Clock().Get(w.Origin) < w.LastSeq {
				next = append(next, w)
			}
		}
		if len(next) == len(pending) {
			return next, nil // no progress: dependencies not on disk
		}
		pending = next
	}
	return nil, nil
}

// accept routes one transaction into the apply pipeline with the same
// accounting as the receive path. It returns false when the node is
// closing.
func (n *Node) accept(w store.WireTxn) bool {
	n.applyPending.Add(1)
	if !n.enqueueApply(w) {
		n.applyPending.Add(-1)
		return false
	}
	return true
}

// Addr returns the node's listening address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// ID returns the node's replica identifier.
func (n *Node) ID() clock.ReplicaID { return n.id }

// AddPeer registers a peer to replicate to and starts its sender. Adding
// the same peer id again is a no-op.
//
// On a node that recovered from a data directory, every own-origin
// record found in the log is re-offered to the new peer ahead of new
// commits: a crash can hit after a commit is durable but before any
// peer received it, and without the re-offer that transaction would
// exist only in the origin's log while its successors replicate — a
// permanent causal gap at every peer. Peers that already have the
// records deduplicate them by origin sequence.
func (n *Node) AddPeer(id clock.ReplicaID, addr string) {
	n.peersMu.Lock()
	if _, ok := n.peers[id]; ok {
		n.peersMu.Unlock()
		return
	}
	p := newPeerConn(n, id, addr)
	n.peers[id] = p
	n.peersMu.Unlock()
	if n.cfg.Legacy {
		return
	}
	n.wg.Add(1)
	go p.run()
	// After run starts: a re-offer backlog larger than the queue needs
	// the sender draining it.
	for _, w := range n.reoffer {
		p.enqueue(w)
	}
}

// RemovePeer stops replicating to a peer and releases its sender — the
// decommission path. The sender flushes what it can of the queue and
// exits; anything still queued is for a site that no longer exists.
// Removing an unknown peer is a no-op.
func (n *Node) RemovePeer(id clock.ReplicaID) {
	n.peersMu.Lock()
	p, ok := n.peers[id]
	if ok {
		delete(n.peers, id)
	}
	n.peersMu.Unlock()
	if ok && !n.cfg.Legacy {
		close(p.quit)
	}
}

// Do runs fn against the node's replica. There is no node lock any more:
// every replica method fn can call (Begin/Commit transactions, Object,
// Lookup, Clock, CompactAll) is individually safe against the concurrent
// receive path, and transactions two-phase-lock their shards. fn itself
// gets no multi-call atomicity — read related keys inside one
// transaction when a consistent view matters.
func (n *Node) Do(fn func(r *store.Replica)) {
	fn(n.replica)
}

// Begin starts a highly available transaction at the node's replica —
// the runtime backend surface (runtime.Replica). Transactions from many
// goroutines run concurrently with each other and with the receive path:
// the store's shard locks give each transaction a per-key-group
// serialised view, and remote effect groups attach atomically. Always
// commit exactly once. Commit hands the transaction to replication while
// holding its shard locks, and a full outbound queue blocks the
// committer (backpressure, by design; size QueueCap above the driver's
// outstanding load — see DESIGN.md).
func (n *Node) Begin() *store.Txn {
	return n.replica.Begin()
}

// Object returns the CRDT stored at key, creating it with mk when absent.
// The lookup is shard-locked; read the returned object through a
// transaction when the node is live.
func (n *Node) Object(key string, mk func() crdt.CRDT) crdt.CRDT {
	return n.replica.Object(key, mk)
}

// Lookup returns the CRDT stored at key if it exists.
func (n *Node) Lookup(key string) (crdt.CRDT, bool) {
	return n.replica.Lookup(key)
}

// CompactAll lets every CRDT at the node's replica compact metadata below
// the stability horizon, shard by shard — safe while the node serves
// traffic (see store.Replica.CompactAll).
//
// On a durable node the stability round also drives the snapshot cycle:
// once Config.SnapshotEvery log bytes have accumulated since the last
// snapshot, the node captures one and truncates the log below the
// horizon. The horizon is the right truncation cut on both axes it must
// respect: it is at or below every member's applied cut (peers will
// never ask for records beneath it) and at or below this replica's own
// applied cut, which the snapshot covers (recovery will not need them
// either).
func (n *Node) CompactAll(horizon, frontier clock.Vector) {
	n.replica.CompactAll(horizon, frontier)
	if n.wal == nil {
		return
	}
	select {
	case <-n.closed:
		// Never snapshot a dead node: after Kill, persisting the
		// in-memory state would resurrect exactly the unsynced suffix
		// the crash must lose.
		return
	default:
	}
	n.snapMu.Lock()
	defer n.snapMu.Unlock()
	if n.wal.Stats().Bytes-n.snapBase < uint64(n.cfg.SnapshotEvery) {
		return
	}
	if err := n.snapshotLocked(); err != nil {
		log.Printf("netrepl: node %s: snapshot failed (log keeps everything): %v", n.id, err)
		return
	}
	if err := n.wal.TruncateBelow(horizon); err != nil {
		log.Printf("netrepl: node %s: wal truncate: %v", n.id, err)
	}
}

// snapshotLocked captures and persists a snapshot; snapMu held.
func (n *Node) snapshotLocked() error {
	data, _, err := n.replica.CaptureSnapshot()
	if err != nil {
		return err
	}
	if err := store.WriteSnapshotFile(n.dataDir, data); err != nil {
		return err
	}
	n.snapBase = n.wal.Stats().Bytes
	n.snapshots.Add(1)
	return nil
}

// ForceSnapshot captures and persists a snapshot immediately, regardless
// of how little the log has grown.
func (n *Node) ForceSnapshot() error {
	if n.wal == nil {
		return fmt.Errorf("netrepl: node %s is not durable", n.id)
	}
	n.snapMu.Lock()
	defer n.snapMu.Unlock()
	return n.snapshotLocked()
}

// SetPaused freezes (or thaws) the node's apply pipeline — the
// crash/recovery fault hook, matching the simulator's: remote frames are
// still received, acknowledged, and queued per origin, but nothing
// applies. Unpausing lets the appliers drain in causal order. Local
// commits are unaffected.
func (n *Node) SetPaused(paused bool) {
	n.pauseMu.Lock()
	n.paused = paused
	n.pauseCond.Broadcast()
	n.pauseMu.Unlock()
	if paused {
		// Kick appliers parked inside a dependency wait so they re-poll
		// their gate, abandon the wait, and park on the pause gate —
		// otherwise a dependency arriving mid-pause would let them apply
		// while the node is "crashed".
		n.replica.WakeExternal()
	}
}

// isPaused reports the pause flag.
func (n *Node) isPaused() bool {
	n.pauseMu.Lock()
	defer n.pauseMu.Unlock()
	return n.paused
}

// pauseWait blocks while the node is paused. It returns false when the
// node closed instead.
func (n *Node) pauseWait() bool {
	n.pauseMu.Lock()
	defer n.pauseMu.Unlock()
	for n.paused {
		select {
		case <-n.closed:
			return false
		default:
		}
		n.pauseCond.Wait()
	}
	return true
}

// BlockOrigin makes the receive path refuse frames whose transactions
// originate from the given replica — the partition fault hook. A refused
// frame's connection drops without an acknowledgement, so the sender
// retries with backoff until the block lifts: delivery stays at-least-once
// and no transaction is lost, exactly the buffered-partition semantics of
// the simulator. Blocking is receive-side because every node streams only
// its own commits, so "frames originating at a" ≡ "the a→n link".
func (n *Node) BlockOrigin(origin clock.ReplicaID, blocked bool) {
	n.blockMu.Lock()
	defer n.blockMu.Unlock()
	if blocked {
		n.blocked[origin] = true
	} else {
		delete(n.blocked, origin)
	}
}

func (n *Node) originBlocked(origin clock.ReplicaID) bool {
	n.blockMu.Lock()
	defer n.blockMu.Unlock()
	return n.blocked[origin]
}

// Stats returns a snapshot of the node's transport metrics.
func (n *Node) Stats() Metrics {
	m := Metrics{
		Dials:             atomic.LoadUint64(&n.m.dials),
		Reconnects:        atomic.LoadUint64(&n.m.reconnects),
		SendErrors:        atomic.LoadUint64(&n.m.sendErrors),
		FramesSent:        atomic.LoadUint64(&n.m.framesSent),
		TxnsSent:          atomic.LoadUint64(&n.m.txnsSent),
		BytesSent:         atomic.LoadUint64(&n.m.bytesSent),
		FramesRecv:        atomic.LoadUint64(&n.m.framesRecv),
		TxnsRecv:          atomic.LoadUint64(&n.m.txnsRecv),
		BytesRecv:         atomic.LoadUint64(&n.m.bytesRecv),
		BackpressureWaits: atomic.LoadUint64(&n.m.backpressureWaits),
		TxnsDropped:       atomic.LoadUint64(&n.m.txnsDropped),
		ApplyDepth:        int(n.applyPending.Load()),
		Snapshots:         n.snapshots.Load(),
		StalledOrigins:    n.stallCount(),
	}
	if n.wal != nil {
		ws := n.wal.Stats()
		m.WALAppends = ws.Appends
		m.WALSyncs = ws.Syncs
		m.WALBytes = ws.Bytes
		m.WALSegments = ws.Segments
	}
	n.peersMu.RLock()
	for _, p := range n.peers {
		m.QueueDepth += len(p.ch)
	}
	n.peersMu.RUnlock()
	return m
}

// Replica exposes the node's store replica — the handle sessions pin
// (store.Session) and tests inspect. The replica is invalidated when
// the node is killed or decommissioned, so a stale handle fails loudly.
func (n *Node) Replica() *store.Replica {
	return n.replica
}

// broadcast ships one committed transaction to every peer. Called from
// Commit under the committing transaction's tag window, so per-peer
// enqueue order matches the origin's sequence order. In streaming mode it
// enqueues and returns; in legacy mode it dials and sends synchronously.
//
// On a durable node it first appends the transaction to the write-ahead
// log (the tag window serialises walEnc) and returns a wait function
// that Commit runs after releasing the transaction's locks: Commit does
// not return before the record is fsynced — so nothing a client was
// ever told succeeded can be lost to a crash — but the fsync itself
// never happens under a lock, and concurrent committers share one group
// commit. The transaction is stamped with its log sequence so each
// peer's sender can hold the frame back until the record is durable
// (see peerConn.deliver): a peer must never hold a transaction the
// origin could forget, or the origin's recovery would reuse its
// sequence numbers for different operations.
func (n *Node) broadcast(w store.WireTxn) func() {
	if n.cfg.Legacy {
		n.legacyBroadcast(w)
		return nil
	}
	var seq uint64
	if n.wal != nil {
		frame, err := n.walEnc.Encode([]store.WireTxn{w})
		if err != nil {
			// Deterministic encoding: a failure is a programming error (an
			// op type without a wire codec), same as the sender path.
			panic(fmt.Sprintf("netrepl: encode commit for wal: %v", err))
		}
		if seq, err = n.wal.Append(frame, []store.WireTxn{w}); err != nil {
			n.walFailed(err)
			seq = 0
		}
		w.SetWALSeq(seq)
	}
	n.peersMu.RLock()
	for _, p := range n.peers {
		p.enqueue(w)
	}
	n.peersMu.RUnlock()
	if seq == 0 {
		return nil
	}
	return func() {
		if err := n.wal.WaitSynced(seq); err != nil {
			n.walFailed(err)
		}
	}
}

// walFailed reports a durability failure once; the WAL error is sticky,
// so the node keeps serving from memory but stops being durable (and a
// restart recovers only to the last synced record).
func (n *Node) walFailed(err error) {
	n.walFailOnce.Do(func() {
		log.Printf("netrepl: node %s: WAL failure, durability lost: %v", n.id, err)
	})
}

// legacyBroadcast is the original demo transport: one short-lived
// connection per transaction per peer, no retries.
func (n *Node) legacyBroadcast(w store.WireTxn) {
	data, err := store.EncodeTxn(w)
	if err != nil {
		atomic.AddUint64(&n.m.sendErrors, 1)
		return
	}
	n.peersMu.RLock()
	defer n.peersMu.RUnlock()
	for _, p := range n.peers {
		conn, err := net.DialTimeout("tcp", p.addr, n.cfg.DialTimeout)
		if err != nil {
			atomic.AddUint64(&n.m.sendErrors, 1)
			continue
		}
		atomic.AddUint64(&n.m.dials, 1)
		if err := writeFrame(conn, data); err != nil {
			atomic.AddUint64(&n.m.sendErrors, 1)
		} else {
			atomic.AddUint64(&n.m.framesSent, 1)
			atomic.AddUint64(&n.m.txnsSent, 1)
			atomic.AddUint64(&n.m.bytesSent, uint64(len(data)+4))
		}
		conn.Close()
	}
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
				continue
			}
		}
		// Register under connMu, re-checking closed: Close sweeps the
		// map after closing n.closed, so a connection accepted in that
		// window must be closed here or nothing ever closes it (and
		// Close would wait on its handler forever). The wg.Add must also
		// happen inside the critical section: Close holds connMu for its
		// sweep before it waits, so either this handler is registered (and
		// counted) before the sweep, or the closed re-check above fires —
		// an Add racing a started Wait could otherwise let Close return
		// while the handler still runs (and lets DropConnections during
		// Close observe a connection that was never registered).
		n.connMu.Lock()
		select {
		case <-n.closed:
			n.connMu.Unlock()
			conn.Close()
			return
		default:
		}
		n.conns[conn] = struct{}{}
		n.wg.Add(1)
		n.connMu.Unlock()
		go n.handle(conn)
	}
}

func (n *Node) handle(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		n.connMu.Lock()
		delete(n.conns, conn)
		n.connMu.Unlock()
		conn.Close()
	}()
	// One pooled read buffer per connection, reused for every frame on
	// the stream: the receive path performs no per-frame buffer
	// allocation (DecodeFrame copies out everything it keeps, so the
	// buffer is free to be overwritten by the next frame).
	bufp := frameBufPool.Get().(*[]byte)
	defer frameBufPool.Put(bufp)
	for {
		data, err := readFrame(conn, bufp, n.cfg.MaxFrame)
		if err != nil {
			return
		}
		// State-transfer requests share the replication listener; both
		// are one-shot (serve, then drop the connection).
		if bytes.HasPrefix(data, []byte(tailMagic)) {
			n.serveTail(conn, data[len(tailMagic):])
			return
		}
		if bytes.HasPrefix(data, []byte(joinMagic)) {
			n.serveJoin(conn)
			return
		}
		txns, err := store.DecodeFrame(data)
		if err != nil {
			return // corrupt stream: drop the connection, sender retries
		}
		// Partition fault: refuse the frame without acking — the sender
		// keeps the batch and retries with backoff until the block lifts.
		// (A frame carries one origin's transactions: nodes stream only
		// their own commits.)
		if len(txns) > 0 && n.originBlocked(txns[0].Origin) {
			return
		}
		// Durability: log and fsync the raw frame BEFORE applying or
		// acknowledging anything from it. Log-before-apply keeps the
		// replica's delivered cut inside the durable cut (a gathered
		// stability horizon can then never cover an op recovery would
		// lose); fsync-before-ack means a sender told to forget a batch
		// can trust this node to resurrect it from its own log.
		if n.wal != nil {
			if seq, err := n.wal.Append(data, txns); err != nil {
				n.walFailed(err)
			} else if err := n.wal.WaitSynced(seq); err != nil {
				n.walFailed(err)
			}
		}
		atomic.AddUint64(&n.m.framesRecv, 1)
		atomic.AddUint64(&n.m.bytesRecv, uint64(len(data)+4))
		// Route each transaction into its origin's apply queue. A full
		// queue blocks here — and thereby withholds the ack, pushing
		// backpressure onto the sender, which will retry the batch (the
		// apply path deduplicates).
		for _, w := range txns {
			if !n.accept(w) {
				return // node closing
			}
		}
		atomic.AddUint64(&n.m.txnsRecv, uint64(len(txns)))
		// Acknowledge once the batch is accepted into the apply pipeline:
		// the sender may now forget it. Applying happens asynchronously —
		// the pipeline is never torn down before the node itself, and on
		// a durable node the batch is already fsynced above, so the ack
		// is safe against this node's crash too. Legacy senders never
		// read acks; the write then fails or lands in a buffer nobody
		// drains, both harmless.
		if err := writeAck(conn); err != nil {
			return
		}
	}
}

// stateTransferLimit is the frame cap on the state-transfer paths
// (snapshot blobs and WAL-record tails). Deliberately far above
// Config.MaxFrame: state transfer is the unstick path for transactions
// too large for live replication, so it must carry what the live path
// cannot.
const stateTransferLimit = 1 << 30

// serveTail streams every logged record above the requester's cut back
// as batch frames, then lets the connection close (EOF is the end
// marker; no acks — the requester retries against another peer on
// error, and re-applied overlap deduplicates). All origins are served,
// not just this node's own: a joiner must also obtain records whose
// origin has since left the mesh, and those exist only in the logs of
// the nodes that received them.
func (n *Node) serveTail(conn net.Conn, req []byte) {
	rd := crdt.NewWireReader(req)
	have, err := crdt.DecodeVectorWire(&rd)
	if err != nil || n.wal == nil {
		return
	}
	recs, err := n.wal.RecordsAbove(have)
	if err != nil {
		return
	}
	enc := store.NewFrameEncoder(store.WireVersionV2)
	var send func(batch []store.WireTxn) bool
	send = func(batch []store.WireTxn) bool {
		frame, err := enc.Encode(batch)
		if err != nil {
			return false
		}
		if len(frame) > n.cfg.MaxFrame && len(batch) > 1 {
			// Keep individual frames small where possible; a single
			// record above MaxFrame still goes out whole — the requester
			// reads this stream with stateTransferLimit, and carrying
			// oversized transactions is this path's reason to exist.
			half := len(batch) / 2
			return send(batch[:half]) && send(batch[half:])
		}
		conn.SetWriteDeadline(time.Now().Add(n.cfg.WriteTimeout))
		return writeFrame(conn, frame) == nil
	}
	for len(recs) > 0 {
		batch := recs
		if len(batch) > n.cfg.MaxBatchTxns {
			batch = recs[:n.cfg.MaxBatchTxns]
		}
		if !send(batch) {
			return
		}
		recs = recs[len(batch):]
	}
}

// serveJoin writes one snapshot of the replica's full state — the donor
// side of a fresh site's bootstrap.
func (n *Node) serveJoin(conn net.Conn) {
	data, _, err := n.replica.CaptureSnapshot()
	if err != nil {
		return
	}
	conn.SetWriteDeadline(time.Now().Add(n.cfg.WriteTimeout))
	_ = writeFrame(conn, data)
}

// fetchSnapshot adopts a donor's full state. Only sound while nothing
// else writes this replica (a fresh joiner before peers stream to it):
// the snapshot installs objects wholesale.
func (n *Node) fetchSnapshot(addr string) error {
	conn, err := net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetWriteDeadline(time.Now().Add(n.cfg.WriteTimeout))
	if err := writeFrame(conn, []byte(joinMagic)); err != nil {
		return err
	}
	bufp := frameBufPool.Get().(*[]byte)
	defer frameBufPool.Put(bufp)
	conn.SetReadDeadline(time.Now().Add(n.cfg.WriteTimeout))
	data, err := readFrame(conn, bufp, stateTransferLimit)
	if err != nil {
		return err
	}
	snap, err := store.DecodeSnapshot(data)
	if err != nil {
		return err
	}
	n.replica.RestoreSnapshot(snap)
	return nil
}

// fetchTail pulls all records above this node's delivered cut from the
// peer at addr, logging each frame before handing its transactions to
// the apply pipeline (the same log-before-apply order as live receive;
// no ack is involved, so no fsync wait either).
func (n *Node) fetchTail(addr string) error {
	conn, err := net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	req := append([]byte(tailMagic), crdt.AppendVectorWire(nil, n.replica.Clock())...)
	conn.SetWriteDeadline(time.Now().Add(n.cfg.WriteTimeout))
	if err := writeFrame(conn, req); err != nil {
		return err
	}
	bufp := frameBufPool.Get().(*[]byte)
	defer frameBufPool.Put(bufp)
	for {
		conn.SetReadDeadline(time.Now().Add(n.cfg.WriteTimeout))
		data, err := readFrame(conn, bufp, stateTransferLimit)
		if err == io.EOF {
			return nil // clean end of stream
		}
		if err != nil {
			return err
		}
		txns, err := store.DecodeFrame(data)
		if err != nil {
			return err
		}
		if n.wal != nil {
			if _, err := n.wal.Append(data, txns); err != nil {
				n.walFailed(err)
			}
		}
		for _, w := range txns {
			if !n.accept(w) {
				return nil
			}
		}
	}
}

// Bootstrap initialises a FRESH site from the mesh: adopt the donor's
// full state snapshot, then pull each peer's op tail. The caller must
// sequence membership correctly (runtime.NetCluster.Join does):
//
//  1. the joiner is added to the stability membership first, freezing
//     the horizon at its cut so no peer truncates records the joiner
//     has not applied;
//  2. the snapshot is fetched before any peer streams to the joiner
//     (snapshot adoption is a wholesale install — see fetchSnapshot);
//  3. peers start streaming (the mesh callback, which AddPeers every
//     existing node towards the joiner), and only then are tails
//     fetched: every record is either in the tail response (logged
//     before it) or in the live stream (committed after the peer began
//     streaming, which precedes its tail response), with the overlap
//     deduplicated by origin sequence.
//
// On a durable joiner the adopted state is immediately re-snapshotted
// under the joiner's own identity, so a crash right after the join
// recovers without re-bootstrapping.
func (n *Node) Bootstrap(donorAddr string, peerAddrs []string, mesh func()) error {
	if err := n.fetchSnapshot(donorAddr); err != nil {
		return fmt.Errorf("netrepl: join %s: snapshot from %s: %w", n.id, donorAddr, err)
	}
	if mesh != nil {
		mesh()
	}
	var firstErr error
	for _, a := range peerAddrs {
		if err := n.fetchTail(a); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("netrepl: join %s: tail from %s: %w", n.id, a, err)
		}
	}
	if n.wal != nil {
		if err := n.ForceSnapshot(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// enqueueApply hands one received transaction to its origin's applier,
// creating queue and goroutine on first contact. It returns false when
// the node is closing.
func (n *Node) enqueueApply(w store.WireTxn) bool {
	n.applyMu.Lock()
	ch, ok := n.appliers[w.Origin]
	if !ok {
		// applyClosed is set by Close under this mutex before it waits on
		// n.wg, so the Add below cannot race the Wait.
		if n.applyClosed {
			n.applyMu.Unlock()
			return false
		}
		ch = make(chan store.WireTxn, n.cfg.QueueCap)
		n.appliers[w.Origin] = ch
		n.wg.Add(1)
		go n.applyLoop(w.Origin, ch)
	}
	n.applyMu.Unlock()
	select {
	case ch <- w:
		return true
	case <-n.closed:
		return false
	}
}

// applyLoop drains one origin's apply queue — per-origin FIFO is what
// store.Replica.ApplyExternal requires of its callers. The streaming
// sender delivers in order, but separate connections (reconnect retries,
// legacy senders, hand-crafted test frames) may interleave out of
// sequence, so a local reorder buffer holds transactions ahead of the
// origin's FIFO gap instead of blocking the queue on them.
//
// Cross-origin causal order is ApplyExternal's dependency wait; the
// blocked applier holds no locks while waiting, and the dependencies it
// waits for arrive on other origins' queues, so the happens-before order
// (acyclic by construction) guarantees progress.
func (n *Node) applyLoop(origin clock.ReplicaID, ch chan store.WireTxn) {
	defer n.wg.Done()
	giveUp := func() bool {
		select {
		case <-n.closed:
			return true
		default:
			return false
		}
	}
	// next is the origin's delivered high-water mark. This goroutine is
	// the only writer of the replica's clock entry for origin, so the
	// local copy stays authoritative.
	next := n.replica.Clock().Get(origin)
	buf := map[uint64]store.WireTxn{} // FIFO reorder buffer: FirstSeq → txn
	// FIFO-gap stall detection. A dependency wait stalls inside
	// ApplyExternal, where applyOne's gate notices it — but a gap in the
	// origin's own sequence keeps its transactions in buf without ever
	// reaching that gate, and an oversized-transaction drop at the
	// sender is exactly such a gap, permanent. Watch the buffer from a
	// ticker: no progress past a non-empty buffer for StallWarn means
	// the prefix is not coming.
	var (
		gapSince  time.Time // non-zero while buf holds work and nothing advances
		warnedGap bool
		tick      <-chan time.Time
	)
	if n.cfg.StallWarn > 0 {
		period := n.cfg.StallWarn / 4
		if period < 10*time.Millisecond {
			period = 10 * time.Millisecond
		}
		tk := time.NewTicker(period)
		defer tk.Stop()
		tick = tk.C
	}
	// gapCheck re-arms the stall watch after handling one transaction:
	// progress (an apply, or the buffer draining) restarts the clock,
	// and a drained buffer clears a warned stall — the gap closed.
	gapCheck := func(progressed bool) {
		switch {
		case len(buf) == 0:
			gapSince = time.Time{}
			if warnedGap {
				warnedGap = false
				n.clearStall(origin)
			}
		case progressed || gapSince.IsZero():
			gapSince = time.Now()
		}
	}
	// Transactions still held in the reorder buffer when the node closes
	// die with it; they were acknowledged, so account for them (Close
	// drains the dead channels the same way once the appliers exited).
	defer func() {
		if dropped := uint64(len(buf)); dropped > 0 {
			atomic.AddUint64(&n.m.txnsDropped, dropped)
			n.applyPending.Add(-int64(dropped))
		}
	}()
	for {
		select {
		case w := <-ch:
			if w.FirstSeq > next {
				// FIFO gap: hold the transaction until the origin's prefix
				// arrives on a later frame.
				if _, dup := buf[w.FirstSeq]; dup {
					n.replica.NoteDuplicate()
					n.applyPending.Add(-1)
				} else {
					buf[w.FirstSeq] = w
				}
				gapCheck(false)
				continue
			}
			if !n.applyOne(w, giveUp) {
				return // node closed before the transaction was processed
			}
			if w.LastSeq > next {
				next = w.LastSeq
			}
			// The gap may have closed for buffered successors.
			for {
				w2, ok := buf[next]
				if !ok {
					break
				}
				delete(buf, next)
				if !n.applyOne(w2, giveUp) {
					return
				}
				next = w2.LastSeq
			}
			gapCheck(true)
		case <-tick:
			if !warnedGap && !gapSince.IsZero() && time.Since(gapSince) > n.cfg.StallWarn {
				warnedGap = true
				// The oldest buffered transaction names the missing
				// prefix: everything in (next, oldest.FirstSeq] is
				// absent and, after this long, presumed unreachable.
				oldest := store.WireTxn{FirstSeq: ^uint64(0)}
				for _, b := range buf {
					if b.FirstSeq < oldest.FirstSeq {
						oldest = b
					}
				}
				n.noteStall(oldest)
			}
		case <-n.closed:
			return
		}
	}
}

// applyOne applies one in-FIFO-order transaction (or drops it as a
// duplicate), honouring the pause gate, and settles its applyPending
// slot. A pause engaging while the transaction waits for a causal
// dependency aborts the wait and re-parks on the pause gate, so nothing
// applies mid-pause even when the dependency arrives during it. It
// returns false only when the node closed before the transaction was
// processed — that transaction is then counted dropped.
func (n *Node) applyOne(w store.WireTxn, giveUp func() bool) bool {
	// Stall detection (see Config.StallWarn): the gate is re-polled on
	// every clock change and on the stall ticker, so a dependency wait
	// that outlives the threshold is noticed even when nothing else
	// moves. The elapsed time deliberately spans pauses and retries —
	// what matters to a reader of the metric is how long the origin's
	// queue has been stuck, not why.
	start := time.Now()
	warned := false
	gate := func() bool {
		if !warned && n.cfg.StallWarn > 0 && time.Since(start) > n.cfg.StallWarn {
			warned = true
			n.noteStall(w)
		}
		return giveUp() || n.isPaused()
	}
	for {
		if !n.pauseWait() {
			break // closed while paused
		}
		if n.replica.ApplyExternal(w, gate) {
			n.settleApply(w.Origin, warned)
			return true
		}
		if giveUp() {
			break
		}
		// ApplyExternal declined without a close: either a duplicate
		// (the delivered cut already covers it — processed) or a pause
		// aborted the dependency wait (retry after the pause lifts).
		if n.replica.Clock().Get(w.Origin) >= w.LastSeq {
			n.settleApply(w.Origin, warned)
			return true
		}
	}
	n.applyPending.Add(-1)
	atomic.AddUint64(&n.m.txnsDropped, 1)
	return false
}

// settleApply releases a processed transaction's applyPending slot and
// clears its origin's stall flag: the queue moved, so the gap closed.
func (n *Node) settleApply(origin clock.ReplicaID, warned bool) {
	n.applyPending.Add(-1)
	if warned {
		n.clearStall(origin)
	}
}

// clearStall retracts a stall mark: the origin's queue moved again.
func (n *Node) clearStall(origin clock.ReplicaID) {
	n.stallMu.Lock()
	delete(n.stalled, origin)
	n.stallMu.Unlock()
}

// noteStall marks a transaction's origin as stalled on a causal gap,
// logging the first occurrence per origin. Deliberately loud: a stall
// that never clears is silent divergence otherwise — the origin's later
// transactions pile up in the reorder buffer while reads serve an ever
// staler prefix. DESIGN.md ("Oversized transactions") describes the
// state-transfer unstick path.
//
// Called from the dependency-wait gate, which runs UNDER the replica's
// clock lock — nothing here may read the replica's clock (or take any
// lock ordered after it).
func (n *Node) noteStall(w store.WireTxn) {
	n.stallMu.Lock()
	first := !n.stalled[w.Origin]
	n.stalled[w.Origin] = true
	n.stallMu.Unlock()
	if first {
		log.Printf("netrepl: node %s: apply queue for origin %s stalled for over %v waiting to apply seq %d..%d (deps %s); "+
			"the dependency may have been dropped as oversized — if the stall persists, recover the site by state transfer",
			n.id, w.Origin, n.cfg.StallWarn, w.FirstSeq, w.LastSeq, w.Deps)
	}
}

// stallCount reports how many origins are currently stalled.
func (n *Node) stallCount() int {
	n.stallMu.Lock()
	defer n.stallMu.Unlock()
	return len(n.stalled)
}

// stallTicker periodically wakes dependency waiters whenever the apply
// pipeline holds work, so their gates get polled even when no clock
// movement does it — in a total stall (the dependency will never
// arrive) nothing else ever broadcasts the condition variable, and the
// stall would otherwise go undetected.
func (n *Node) stallTicker() {
	defer n.wg.Done()
	period := n.cfg.StallWarn / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-n.closed:
			return
		case <-t.C:
			if n.applyPending.Load() > 0 {
				n.replica.WakeExternal()
			}
		}
	}
}

// writeAck confirms one accepted frame.
func writeAck(conn net.Conn) error {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], ackMagic)
	_, err := conn.Write(buf[:])
	return err
}

// readAck consumes one acknowledgement within the deadline.
func readAck(conn net.Conn, deadline time.Time) error {
	if err := conn.SetReadDeadline(deadline); err != nil {
		return err
	}
	var buf [4]byte
	if _, err := io.ReadFull(conn, buf[:]); err != nil {
		return err
	}
	if binary.BigEndian.Uint32(buf[:]) != ackMagic {
		return fmt.Errorf("netrepl: bad ack word %x", buf)
	}
	return nil
}

// DropConnections abruptly closes every accepted inbound connection — the
// chaos hook for connection churn. Peers streaming to this node see their
// next write fail and re-dial with backoff; delivery is at-least-once, so
// retried batches deduplicate and no transaction is lost. The listener
// stays up, so reconnects succeed immediately. It returns the number of
// connections killed.
//
// Racing Close is allowed: once the node is closing, Close owns the
// teardown — it sweeps the same map under connMu and then waits for the
// handlers — so DropConnections backs off and reports zero rather than
// re-closing connections mid-drain (peers in their ack/retry loop would
// count the kill against the dying node and re-send into a closed
// listener).
func (n *Node) DropConnections() int {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	select {
	case <-n.closed:
		return 0
	default:
	}
	for c := range n.conns {
		c.Close()
	}
	return len(n.conns)
}

// Pending reports the number of received transactions waiting in the
// apply pipeline (for their causal dependencies, a pause to lift, or an
// applier slot).
func (n *Node) Pending() int {
	return int(n.applyPending.Load())
}

// Clock returns the replica's delivered causal cut.
func (n *Node) Clock() clock.Vector {
	return n.replica.Clock()
}

// Close drains the outbound queues (for up to Config.DrainTimeout), stops
// the listener, senders, and appliers, and waits for in-flight handlers.
// On a durable node the log is flushed and fsynced. Transactions still
// queued in the apply pipeline are dropped with the node (on a durable
// node they are in the log, so a restart re-applies them). Safe to call
// more than once.
func (n *Node) Close() error { return n.shutdown(true) }

// Kill is Close with kill -9 semantics — the crash fault hook. No
// drain: outbound queues are abandoned immediately, and the write-ahead
// log is dropped without flushing its append buffer, losing exactly the
// records whose WaitSynced never returned — i.e. nothing that was ever
// acknowledged to a client or a peer. The replica is invalidated so
// pinned sessions fail with ErrStale instead of silently reading the
// dead instance (the site's identity moves to the recovered node).
// A node restarted from the same data directory recovers the site.
func (n *Node) Kill() error { return n.shutdown(false) }

func (n *Node) shutdown(graceful bool) error {
	n.closeOnce.Do(func() {
		if graceful {
			n.drainDL.Store(time.Now().Add(n.cfg.DrainTimeout))
		} else {
			n.drainDL.Store(time.Now())
			n.replica.Invalidate()
		}
		close(n.closed)
		n.closeErr = n.ln.Close()
		// Senders flush on their own; inbound connections would block
		// forever on read (peers hold them open), so close them.
		n.connMu.Lock()
		for c := range n.conns {
			c.Close()
		}
		n.connMu.Unlock()
		// Stop applier creation (see enqueueApply), then wake appliers
		// parked on the pause gate or on a causal dependency so they
		// observe the close.
		n.applyMu.Lock()
		n.applyClosed = true
		n.applyMu.Unlock()
		n.pauseMu.Lock()
		n.pauseCond.Broadcast()
		n.pauseMu.Unlock()
		n.replica.WakeExternal()
		n.wg.Wait()
		// Handlers and appliers are gone; transactions still sitting in
		// the dead apply queues were acknowledged and are now lost with
		// the node — account for them so the metrics settle.
		n.applyMu.Lock()
		for _, ch := range n.appliers {
			for {
				select {
				case <-ch:
					atomic.AddUint64(&n.m.txnsDropped, 1)
					n.applyPending.Add(-1)
					continue
				default:
				}
				break
			}
		}
		n.applyMu.Unlock()
		// Tear down the log last: handlers that were appending are gone.
		if n.wal != nil {
			var err error
			if graceful {
				err = n.wal.Close()
			} else {
				err = n.wal.Abandon()
			}
			if err != nil && n.closeErr == nil {
				n.closeErr = err
			}
		}
	})
	return n.closeErr
}

// drainDeadline reports the post-Close flush deadline (zero before Close).
func (n *Node) drainDeadline() time.Time {
	if v := n.drainDL.Load(); v != nil {
		return v.(time.Time)
	}
	return time.Time{}
}

// writeFrame writes one length-prefixed frame.
func writeFrame(conn net.Conn, data []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(data)
	return err
}

// frameBufPool recycles receive buffers across connections. A handler
// checks one out for the life of its connection (frames on a stream
// reuse it), so the pool's job is bounding memory across connection
// churn rather than per-frame recycling.
var frameBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 16<<10)
		return &b
	},
}

// readFrame reads one length-prefixed frame into *bufp (growing it when
// the frame exceeds its capacity), refusing frames above limit. The
// returned slice aliases *bufp and is valid until the next readFrame
// call with the same buffer.
func readFrame(conn net.Conn, bufp *[]byte, limit int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > uint32(limit) {
		return nil, fmt.Errorf("netrepl: frame of %d bytes exceeds limit", size)
	}
	if uint32(cap(*bufp)) < size {
		*bufp = make([]byte, size)
	}
	data := (*bufp)[:size]
	if _, err := io.ReadFull(conn, data); err != nil {
		return nil, err
	}
	return data, nil
}
