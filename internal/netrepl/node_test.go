package netrepl

import (
	"fmt"
	"testing"
	"time"

	"ipa/internal/clock"
	"ipa/internal/store"
)

// newTrio spins up three connected nodes on localhost.
func newTrio(t *testing.T) []*Node {
	t.Helper()
	ids := []clock.ReplicaID{"n1", "n2", "n3"}
	nodes := make([]*Node, len(ids))
	for i, id := range ids {
		n, err := NewNode(id, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		t.Cleanup(func() { n.Close() })
	}
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				a.AddPeer(b.ID(), b.Addr())
			}
		}
	}
	return nodes
}

// waitConverged polls until every node's clock covers every other's.
func waitConverged(t *testing.T, nodes []*Node) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		clocks := make([]clock.Vector, len(nodes))
		for i, n := range nodes {
			clocks[i] = n.Clock()
		}
		for i := range clocks {
			for j := range clocks {
				if !clocks[i].LEq(clocks[j]) {
					done = false
				}
			}
		}
		if done {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("nodes did not converge in time")
}

func TestTCPReplicationConverges(t *testing.T) {
	nodes := newTrio(t)

	// Concurrent writes from all nodes over real sockets.
	for i, n := range nodes {
		i := i
		n.Do(func(r *store.Replica) {
			for k := 0; k < 10; k++ {
				tx := r.Begin()
				store.AWSetAt(tx, "set").Add(fmt.Sprintf("n%d-e%d", i, k), "")
				store.CounterAt(tx, "cnt").Add(1)
				tx.Commit()
			}
		})
	}
	waitConverged(t, nodes)

	var sizes []int
	var counts []int64
	for _, n := range nodes {
		n.Do(func(r *store.Replica) {
			tx := r.Begin()
			sizes = append(sizes, store.AWSetAt(tx, "set").Size())
			counts = append(counts, store.CounterAt(tx, "cnt").Value())
			tx.Commit()
		})
	}
	for i := range nodes {
		if sizes[i] != 30 || counts[i] != 30 {
			t.Fatalf("node %d: size=%d count=%d, want 30/30", i, sizes[i], counts[i])
		}
	}
}

func TestTCPCausalDependencyHolds(t *testing.T) {
	nodes := newTrio(t)
	a, b, c := nodes[0], nodes[1], nodes[2]

	// a writes X; wait until b has it; b then writes Y (depends on X).
	a.Do(func(r *store.Replica) {
		tx := r.Begin()
		store.AWSetAt(tx, "s").Add("X", "")
		tx.Commit()
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		var has bool
		b.Do(func(r *store.Replica) {
			tx := r.Begin()
			has = store.AWSetAt(tx, "s").Contains("X")
			tx.Commit()
		})
		if has {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("b never received X")
		}
		time.Sleep(2 * time.Millisecond)
	}
	b.Do(func(r *store.Replica) {
		tx := r.Begin()
		store.AWSetAt(tx, "s").Add("Y", "")
		tx.Commit()
	})
	waitConverged(t, nodes)

	// Wherever Y is visible, X must be too (causal order), and c has both.
	c.Do(func(r *store.Replica) {
		tx := r.Begin()
		s := store.AWSetAt(tx, "s")
		if s.Contains("Y") && !s.Contains("X") {
			t.Error("causal order violated: Y without X")
		}
		if !s.Contains("X") || !s.Contains("Y") {
			t.Error("c missing updates after convergence")
		}
		tx.Commit()
	})
}

func TestWireRoundTrip(t *testing.T) {
	// Every op kind survives encode/decode.
	nodes := newTrio(t)
	n := nodes[0]
	n.Do(func(r *store.Replica) {
		tx := r.Begin()
		store.AWSetAt(tx, "aw").Add("x", "payload")
		store.AWSetAt(tx, "aw").Touch("x")
		store.AWSetAt(tx, "aw").Remove("x")
		store.RWSetAt(tx, "rw").Add("y", "")
		store.RWSetAt(tx, "rw").Remove("y")
		store.CounterAt(tx, "c").Add(-7)
		store.RegisterAt(tx, "reg").Set("v")
		tx.Commit()
	})
	waitConverged(t, nodes)
	nodes[2].Do(func(r *store.Replica) {
		tx := r.Begin()
		if store.AWSetAt(tx, "aw").Contains("x") {
			t.Error("aw state wrong after wire round trip")
		}
		if store.RWSetAt(tx, "rw").Contains("y") {
			t.Error("rw state wrong after wire round trip")
		}
		if store.CounterAt(tx, "c").Value() != -7 {
			t.Error("counter state wrong after wire round trip")
		}
		if v, _ := store.RegisterAt(tx, "reg").Value(); v != "v" {
			t.Error("register state wrong after wire round trip")
		}
		tx.Commit()
	})
	if nodes[2].Stats().TxnsRecv == 0 {
		t.Fatal("no frames delivered")
	}
}

func TestEncodeDecodeDirect(t *testing.T) {
	w := store.WireTxn{
		Origin:   "n1",
		Deps:     clock.Vector{"n1": 3, "n2": 1},
		FirstSeq: 3,
		LastSeq:  5,
	}
	data, err := store.EncodeTxn(w)
	if err != nil {
		t.Fatal(err)
	}
	back, err := store.DecodeTxn(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Origin != "n1" || back.LastSeq != 5 || !back.Deps.Equal(w.Deps) {
		t.Fatalf("round trip = %+v", back)
	}
	if _, err := store.DecodeTxn([]byte("garbage")); err == nil {
		t.Fatal("garbage must not decode")
	}
}
