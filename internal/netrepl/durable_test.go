package netrepl

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ipa/internal/store"
)

func durableCfg(dir string) Config {
	return Config{
		FlushInterval: 100 * time.Microsecond,
		BackoffMin:    time.Millisecond,
		BackoffMax:    10 * time.Millisecond,
		DataDir:       dir,
	}
}

// TestKillMidGroupCommitNoAckedLoss is the acceptance check for the
// durability contract: Kill (the kill -9 path — no flush, no drain)
// lands while concurrent committers are mid-stream, so the WAL's
// group-commit buffer is non-empty and the on-disk tail may end in a
// torn record. Every operation whose Commit returned before the kill
// began must be present after recovery, op by op. Operations racing the
// kill may go either way (their ack never escaped the dying process);
// unsynced suffix loss is exactly what Abandon permits.
func TestKillMidGroupCommitNoAckedLoss(t *testing.T) {
	dir := t.TempDir()
	n, err := NewNodeWithConfig("a", "127.0.0.1:0", durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}

	var (
		killed  atomic.Bool
		ackedMu sync.Mutex
		acked   []string
		wg      sync.WaitGroup
	)
	const committers = 4
	wg.Add(committers)
	for g := 0; g < committers; g++ {
		g := g
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				if killed.Load() {
					return
				}
				elem := fmt.Sprintf("op-%d-%d", g, i)
				n.Do(func(r *store.Replica) {
					tx := r.Begin()
					store.AWSetAt(tx, "acked").Add(elem, "")
					tx.Commit()
				})
				// Commit returned: the record is fsynced — unless the
				// kill already started, in which case the "ack" may be
				// the walFailed path and proves nothing. Only commits
				// strictly before the kill go into the must-survive set.
				if killed.Load() {
					return
				}
				ackedMu.Lock()
				acked = append(acked, elem)
				ackedMu.Unlock()
			}
		}()
	}

	// Let the committers build up a real history, then kill mid-stream.
	waitUntil(t, "some commits acked", func() bool {
		ackedMu.Lock()
		defer ackedMu.Unlock()
		return len(acked) > 200
	})
	killed.Store(true)
	if err := n.Kill(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	ackedMu.Lock()
	mustSurvive := append([]string(nil), acked...)
	ackedMu.Unlock()
	sort.Strings(mustSurvive)
	t.Logf("killed with %d acked ops", len(mustSurvive))

	// Simulate the torn tail a mid-write kill can leave: a record header
	// promising more bytes than follow. Recovery must truncate it away,
	// not panic.
	tearWALTail(t, dir)

	rec, err := NewNodeWithConfig("a", "127.0.0.1:0", durableCfg(dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer rec.Close()
	var missing []string
	rec.Do(func(r *store.Replica) {
		tx := r.Begin()
		set := store.AWSetAt(tx, "acked")
		for _, elem := range mustSurvive {
			if !set.Contains(elem) {
				missing = append(missing, elem)
			}
		}
		tx.Commit()
	})
	if len(missing) > 0 {
		t.Fatalf("%d acked ops lost across kill+recover (first: %s)", len(missing), missing[0])
	}
	if st := rec.Stats(); st.WALAppends == 0 {
		t.Fatalf("recovered node reports no WAL activity: %+v", st)
	}
}

// tearWALTail appends a partial record to the node's newest WAL segment.
func tearWALTail(t *testing.T, dataDir string) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dataDir, "wal", "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments under %s (err %v)", dataDir, err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], 4096) // promises 4 KiB...
	if _, err := f.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn")); err != nil { // ...delivers 4 bytes
		t.Fatal(err)
	}
}

// TestOversizedTxnStallDetection is the regression test for the
// oversized-transaction causal gap: the sender drops a transaction too
// large for any frame (counted, announced once), and the receiver —
// which previously stalled silently forever — must now detect the stall,
// log it, and expose the origin in Metrics.StalledOrigins. Clearing the
// gap (here: raising MaxFrame would be cheating, so the test only checks
// detection) is the documented state-transfer path.
func TestOversizedTxnStallDetection(t *testing.T) {
	a, err := NewNodeWithConfig("a", "127.0.0.1:0", Config{
		FlushInterval: 100 * time.Microsecond,
		MaxFrame:      2048,
		MaxBatchTxns:  1, // no batch splitting to blur the single-txn case
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewNodeWithConfig("b", "127.0.0.1:0", Config{
		FlushInterval: 100 * time.Microsecond,
		StallWarn:     30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer("b", b.Addr())

	// One transaction that cannot fit a 2 KiB frame, then small ones
	// that depend on it through origin FIFO.
	big := make([]byte, 8192)
	for i := range big {
		big[i] = 'x'
	}
	a.Do(func(r *store.Replica) {
		tx := r.Begin()
		store.AWSetAt(tx, "s").Add("big", string(big))
		tx.Commit()
		for i := 0; i < 5; i++ {
			tx := r.Begin()
			store.CounterAt(tx, "after").Add(1)
			tx.Commit()
		}
	})

	// The sender must drop the oversized transaction, once and visibly.
	waitUntil(t, "oversized txn dropped at sender", func() bool {
		return a.Stats().TxnsDropped >= 1
	})
	// The receiver must declare the origin stalled once StallWarn
	// elapses — the later transactions sit on a FIFO gap that will
	// never close.
	waitUntil(t, "receiver detects the stall", func() bool {
		return b.Stats().StalledOrigins == 1
	})
	// Nothing past the gap may have applied (that would break causal
	// FIFO), and the gap stays: this is detection, not repair.
	if v := counterValue(b, "after"); v != 0 {
		t.Fatalf("receiver applied %d post-gap txns across a causal gap", v)
	}
}
