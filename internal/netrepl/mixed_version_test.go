package netrepl

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"ipa/internal/clock"
	"ipa/internal/crdt"
	"ipa/internal/store"
)

// TestMixedVersionMeshConverges pins the rolling-upgrade story: a mesh
// where one node still sends v1 gob frames while the others send the v2
// binary codec must converge to digest-identical state under a workload
// that exercises every CRDT kind. Receivers are version-agnostic, so the
// only way this fails is a semantic gap between the two encodings.
func TestMixedVersionMeshConverges(t *testing.T) {
	ids := []clock.ReplicaID{"n1", "n2", "n3"}
	nodes := make([]*Node, len(ids))
	for i, id := range ids {
		cfg := Config{}
		if i == 0 {
			cfg.WireVersion = store.WireVersionGob // the straggler node
		}
		n, err := NewNodeWithConfig(id, "127.0.0.1:0", cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		t.Cleanup(func() { n.Close() })
	}
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				a.AddPeer(b.ID(), b.Addr())
			}
		}
	}

	// Every node commits through every CRDT kind, including the op shapes
	// with predicates, observed sets, and multi-field payloads.
	for i, n := range nodes {
		i, n := i, n
		n.Do(func(r *store.Replica) {
			for k := 0; k < 8; k++ {
				tx := r.Begin()
				elem := fmt.Sprintf("n%d-e%d", i, k)
				store.AWSetAt(tx, "aw").Add(elem, fmt.Sprintf("pay-%d", k))
				store.RWSetAt(tx, "rw").Add(elem, "")
				store.CounterAt(tx, "pn").Add(int64(k - 3))
				store.BoundedAt(tx, "bc").Grant(2)
				store.RegisterAt(tx, "lww").Set(elem)
				tx.Apply("mv", crdt.MVSetOp{Value: elem, Tag: tx.NewTag()},
					crdt.Ctor(crdt.KindMVRegister))
				tx.Commit()
			}
			// Removes with observed state and predicate wildcards.
			tx := r.Begin()
			store.AWSetAt(tx, "aw").Remove(fmt.Sprintf("n%d-e0", i))
			store.RWSetAt(tx, "rw").Remove(fmt.Sprintf("n%d-e1", i))
			store.RWSetAt(tx, "rw").RemoveWhere(crdt.Match{Index: 0, Value: fmt.Sprintf("n%d-e2", i)})
			store.BoundedAt(tx, "bc").Consume(1)
			tx.Commit()
		})
	}
	waitConverged(t, nodes)

	digest := func(n *Node) string {
		var b strings.Builder
		n.Do(func(r *store.Replica) {
			tx := r.Begin()
			defer tx.Commit()
			aw := store.AWSetAt(tx, "aw").Elems()
			sort.Strings(aw)
			fmt.Fprintf(&b, "aw=%v\n", aw)
			for _, e := range aw {
				pay, _ := store.AWSetAt(tx, "aw").Payload(e)
				fmt.Fprintf(&b, "aw[%s]=%s\n", e, pay)
			}
			rw := store.RWSetAt(tx, "rw").Elems()
			sort.Strings(rw)
			fmt.Fprintf(&b, "rw=%v\n", rw)
			fmt.Fprintf(&b, "pn=%d\n", store.CounterAt(tx, "pn").Value())
			fmt.Fprintf(&b, "bc=%d\n", store.BoundedAt(tx, "bc").Value())
		})
		// Registers outside the txn: read the merged object states.
		if reg, ok := n.Lookup("lww"); ok {
			v, _ := reg.(*crdt.LWWRegister).Value()
			fmt.Fprintf(&b, "lww=%s\n", v)
		}
		if reg, ok := n.Lookup("mv"); ok {
			vals := reg.(*crdt.MVRegister).Values()
			sort.Strings(vals)
			fmt.Fprintf(&b, "mv=%v\n", vals)
		}
		return b.String()
	}

	base := digest(nodes[0])
	for _, n := range nodes[1:] {
		if d := digest(n); d != base {
			t.Fatalf("mixed-version mesh diverged:\n%s (gob sender)\nvs %s:\n%s", base, n.ID(), d)
		}
	}

	// The straggler really did send gob frames and the others really did
	// send v2: all of its outbound bytes decoded at v2-default receivers
	// and vice versa, so FramesSent > 0 everywhere proves cross-decoding.
	for _, n := range nodes {
		if n.Stats().FramesSent == 0 {
			t.Fatalf("node %s sent no frames; the mesh did not exercise its encoder", n.ID())
		}
	}
}
