package netrepl_test

import (
	"fmt"
	"log"
	"time"

	"ipa/internal/netrepl"
	"ipa/internal/store"
)

// ExampleNewNode replicates one transaction between two nodes over real
// TCP sockets with the default streaming transport.
func ExampleNewNode() {
	a, err := netrepl.NewNode("a", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	b, err := netrepl.NewNode("b", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer b.Close()
	a.AddPeer(b.ID(), b.Addr())
	b.AddPeer(a.ID(), a.Addr())

	a.Do(func(r *store.Replica) {
		tx := r.Begin()
		store.AWSetAt(tx, "accounts").Add("alice", "balance: 10")
		tx.Commit()
	})

	// Replication is asynchronous: poll until b has delivered a's commit.
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if b.Clock().Get("a") > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	b.Do(func(r *store.Replica) {
		tx := r.Begin()
		fmt.Println("b sees alice:", store.AWSetAt(tx, "accounts").Contains("alice"))
		tx.Commit()
	})
	// Output: b sees alice: true
}

// ExampleNewNodeWithConfig tunes the streaming transport: a wide
// coalescing window and large batches for bulk replication, a small
// queue to bound memory (full queues backpressure committers).
func ExampleNewNodeWithConfig() {
	cfg := netrepl.Config{
		FlushInterval: 2 * time.Millisecond, // wait longer, batch more
		MaxBatchTxns:  512,                  // up to 512 txns per frame
		QueueCap:      1024,                 // bound outbound memory
		DrainTimeout:  5 * time.Second,      // flush patiently on Close
	}
	src, err := netrepl.NewNodeWithConfig("src", "127.0.0.1:0", cfg)
	if err != nil {
		log.Fatal(err)
	}
	dst, err := netrepl.NewNodeWithConfig("dst", "127.0.0.1:0", cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer dst.Close()
	src.AddPeer(dst.ID(), dst.Addr())

	// A burst of commits coalesces into far fewer frames than txns.
	src.Do(func(r *store.Replica) {
		for i := 0; i < 100; i++ {
			tx := r.Begin()
			store.CounterAt(tx, "events").Add(1)
			tx.Commit()
		}
	})
	src.Close() // drains the queue before returning

	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if dst.Clock().Get("src") >= 100 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s := src.Stats()
	fmt.Println("txns sent:", s.TxnsSent)
	fmt.Println("batched:", s.FramesSent < s.TxnsSent)
	dst.Do(func(r *store.Replica) {
		tx := r.Begin()
		fmt.Println("dst counter:", store.CounterAt(tx, "events").Value())
		tx.Commit()
	})
	// Output:
	// txns sent: 100
	// batched: true
	// dst counter: 100
}
