package netrepl

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ipa/internal/clock"
	"ipa/internal/store"
)

// TestCloseDropConnectionsRace drives Close, DropConnections, and live
// replication traffic against each other. The ordering contract under
// test (run with -race):
//
//   - a handler accepted in the Close window is either registered and
//     counted (wg.Add inside the connMu critical section) before Close's
//     sweep — so Close waits for it — or dropped by the closed re-check;
//   - DropConnections during Close backs off (returns 0) instead of
//     closing connections the teardown already owns while peers sit in
//     their ack/retry loop.
func TestCloseDropConnectionsRace(t *testing.T) {
	cfg := Config{
		FlushInterval: 100 * time.Microsecond,
		BackoffMin:    time.Millisecond,
		BackoffMax:    5 * time.Millisecond,
		DrainTimeout:  200 * time.Millisecond,
	}
	for round := 0; round < 5; round++ {
		a, err := NewNodeWithConfig("close-a", "127.0.0.1:0", cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewNodeWithConfig("close-b", "127.0.0.1:0", cfg)
		if err != nil {
			t.Fatal(err)
		}
		a.AddPeer(b.ID(), b.Addr())
		b.AddPeer(a.ID(), a.Addr())

		stop := make(chan struct{})
		var wg sync.WaitGroup

		// Traffic into b (so b has inbound connections to drop/close).
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				a.Do(func(r *store.Replica) {
					tx := r.Begin()
					store.AWSetAt(tx, "k").Add(fmt.Sprintf("a-%d-%d", round, i), "")
					tx.Commit()
				})
			}
		}()

		// Connection churn racing the close below.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					b.DropConnections()
				}
			}
		}()

		time.Sleep(5 * time.Millisecond)
		if err := b.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		// After Close returns, DropConnections must be inert.
		if n := b.DropConnections(); n != 0 {
			t.Fatalf("DropConnections after Close killed %d connections, want 0", n)
		}
		close(stop)
		// Close a before joining its committer: with b gone for good, a
		// committer can legitimately sit in the backpressure wait, and
		// Close is what unblocks it (the enqueue drops, counted).
		a.Close()
		wg.Wait()
	}
}

// TestRuntimeSurfaceLocking exercises the Begin/Object/Lookup surface a
// runtime backend uses, concurrently with the receive path: transactions
// at one node while a peer streams into it must serialise on the node
// lock so reads observe transaction-atomic states.
func TestRuntimeSurfaceLocking(t *testing.T) {
	a, err := NewNode("lock-a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewNode("lock-b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer(b.ID(), b.Addr())
	b.AddPeer(a.ID(), a.Addr())

	const txns = 200
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < txns; i++ {
			// The other writer: a's commits race b's receive path.
			tx := a.Begin()
			store.CounterAt(tx, "n").Add(1)
			tx.Commit()
		}
	}()
	for i := 0; i < txns; i++ {
		tx := b.Begin()
		store.CounterAt(tx, "n").Add(1)
		tx.Commit()
	}
	<-done

	want := uint64(txns)
	deadline := time.Now().Add(10 * time.Second)
	for {
		ca, cb := a.Clock(), b.Clock()
		if ca.Get(clock.ReplicaID("lock-b")) >= want && cb.Get(clock.ReplicaID("lock-a")) >= want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no convergence: a=%s b=%s", ca, cb)
		}
		time.Sleep(time.Millisecond)
	}
	for _, n := range []*Node{a, b} {
		tx := n.Begin()
		if v := store.CounterAt(tx, "n").Value(); v != 2*txns {
			t.Errorf("%s: counter = %d, want %d", n.ID(), v, 2*txns)
		}
		tx.Commit()
	}
}
