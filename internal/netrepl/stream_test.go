package netrepl

import (
	"encoding/binary"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"ipa/internal/clock"
	"ipa/internal/store"
)

// waitUntil polls cond every millisecond until it holds or the deadline
// expires.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// commitN commits n one-update transactions on the node.
func commitN(n *Node, key string, count int) {
	n.Do(func(r *store.Replica) {
		for i := 0; i < count; i++ {
			tx := r.Begin()
			store.CounterAt(tx, key).Add(1)
			tx.Commit()
		}
	})
}

// counterValue reads the counter at key on the node.
func counterValue(n *Node, key string) int64 {
	var v int64
	n.Do(func(r *store.Replica) {
		tx := r.Begin()
		v = store.CounterAt(tx, key).Value()
		tx.Commit()
	})
	return v
}

// TestPeerDownAtSend commits while the peer's address has no listener:
// the sender must queue, retry with backoff, and deliver everything once
// the peer finally comes up.
func TestPeerDownAtSend(t *testing.T) {
	// Reserve an address, then free it so the peer is down.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peerAddr := ln.Addr().String()
	ln.Close()

	cfg := Config{BackoffMin: time.Millisecond, BackoffMax: 20 * time.Millisecond}
	a, err := NewNodeWithConfig("a", "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.AddPeer("b", peerAddr)

	commitN(a, "c", 25)
	// The peer is down: errors accumulate, nothing is sent.
	waitUntil(t, "send errors while peer down", func() bool {
		return a.Stats().SendErrors > 0
	})
	if s := a.Stats(); s.FramesSent != 0 {
		t.Fatalf("sent %d frames to a dead peer", s.FramesSent)
	}

	// Bring the peer up on the reserved address (retry: the port was
	// released above but another process could race us for it).
	var b *Node
	for i := 0; i < 20; i++ {
		b, err = NewNode("b", peerAddr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", peerAddr, err)
	}
	defer b.Close()

	waitUntil(t, "delivery after peer came up", func() bool {
		return counterValue(b, "c") == 25
	})
	// The sender counts a transaction sent only on ack, which trails the
	// receiver's apply by one read — wait rather than assert immediately.
	waitUntil(t, "acked sends after peer came up", func() bool {
		s := a.Stats()
		return s.TxnsSent >= 25 && s.Dials > 0
	})
}

// proxy is a TCP relay whose live connections the test can kill to force
// the sender into a mid-stream reconnect.
type proxy struct {
	ln     net.Listener
	target string

	mu    sync.Mutex
	conns []net.Conn
	done  bool
}

func newProxy(t *testing.T, target string) *proxy {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &proxy{ln: ln, target: target}
	go p.accept()
	t.Cleanup(p.Close)
	return p
}

func (p *proxy) Addr() string { return p.ln.Addr().String() }

func (p *proxy) accept() {
	for {
		in, err := p.ln.Accept()
		if err != nil {
			return
		}
		out, err := net.Dial("tcp", p.target)
		if err != nil {
			in.Close()
			continue
		}
		p.mu.Lock()
		if p.done {
			p.mu.Unlock()
			in.Close()
			out.Close()
			return
		}
		p.conns = append(p.conns, in, out)
		p.mu.Unlock()
		go func() { io.Copy(out, in); out.Close() }()
		go func() { io.Copy(in, out); in.Close() }()
	}
}

// KillActive severs every live relayed connection.
func (p *proxy) KillActive() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
}

func (p *proxy) Close() {
	p.mu.Lock()
	p.done = true
	p.mu.Unlock()
	p.ln.Close()
	p.KillActive()
}

// TestReconnectMidStream kills the sender's connection between batches:
// the sender must reconnect with backoff and resume, and the receiver's
// dedup must absorb any retried batch.
func TestReconnectMidStream(t *testing.T) {
	cfg := Config{BackoffMin: time.Millisecond, BackoffMax: 20 * time.Millisecond}
	b, err := NewNodeWithConfig("b", "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	px := newProxy(t, b.Addr())

	a, err := NewNodeWithConfig("a", "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.AddPeer("b", px.Addr())

	commitN(a, "c", 10)
	waitUntil(t, "first batch", func() bool { return counterValue(b, "c") == 10 })

	px.KillActive() // the sender discovers the break on its next write

	commitN(a, "c", 15)
	waitUntil(t, "delivery after reconnect", func() bool {
		return counterValue(b, "c") == 25
	})
	if s := a.Stats(); s.Reconnects == 0 {
		t.Fatalf("expected a reconnect, stats: %+v", s)
	}
	if b.Pending() != 0 {
		t.Fatalf("pending = %d after convergence", b.Pending())
	}
}

// captureTxns commits count transactions on a scratch single-member
// cluster and returns their wire forms (with correct seqs and deps).
func captureTxns(origin clock.ReplicaID, key string, count int) []store.WireTxn {
	c := store.NewSocketCluster(origin)
	var out []store.WireTxn
	c.SetOnCommit(func(w store.WireTxn) { out = append(out, w) })
	r := c.Replica(origin)
	for i := 0; i < count; i++ {
		tx := r.Begin()
		store.CounterAt(tx, key).Add(1)
		tx.Commit()
	}
	return out
}

// rawSend dials the node and writes pre-encoded frames on one connection.
func rawSend(t *testing.T, addr string, frames ...[]byte) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, f := range frames {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(f)))
		if _, err := conn.Write(hdr[:]); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(f); err != nil {
			t.Fatal(err)
		}
	}
	// Keep the connection open briefly so the receiver reads everything
	// before EOF tears the handler down.
	time.Sleep(10 * time.Millisecond)
}

func encodeBatch(t *testing.T, txns ...store.WireTxn) []byte {
	t.Helper()
	data, err := store.EncodeBatch(txns)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestBatchesOutOfCausalOrder hand-delivers batch frames in reverse
// order across separate connections: nothing may apply until the causal
// prefix arrives, and a withheld ("dropped") batch must block its
// dependents without corrupting state.
func TestBatchesOutOfCausalOrder(t *testing.T) {
	n, err := NewNode("n", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	txns := captureTxns("x", "c", 3)
	if len(txns) != 3 {
		t.Fatalf("captured %d txns", len(txns))
	}

	// Deliver txn3, then txn2 — txn1 is withheld (a dropped batch).
	rawSend(t, n.Addr(), encodeBatch(t, txns[2]))
	rawSend(t, n.Addr(), encodeBatch(t, txns[1]))
	waitUntil(t, "out-of-order batches queued", func() bool { return n.Pending() == 2 })
	if got := n.Clock().Get("x"); got != 0 {
		t.Fatalf("applied ahead of causal order: clock[x] = %d", got)
	}
	if v := counterValue(n, "c"); v != 0 {
		t.Fatalf("counter = %d before causal prefix arrived", v)
	}

	// A duplicate of txn2 while still undeliverable must not wedge the
	// queue once the prefix arrives: the reorder buffer detects it on
	// arrival and drops it without holding it pending.
	rawSend(t, n.Addr(), encodeBatch(t, txns[1]))
	waitUntil(t, "duplicate dropped", func() bool {
		var dups uint64
		n.Do(func(r *store.Replica) { _, dups = r.DeliveryStats() })
		return dups == 1 && n.Pending() == 2
	})

	// The missing batch arrives last: everything drains in causal order.
	rawSend(t, n.Addr(), encodeBatch(t, txns[0]))
	waitUntil(t, "drain after prefix", func() bool {
		return n.Clock().Get("x") == 3 && n.Pending() == 0
	})
	if v := counterValue(n, "c"); v != 3 {
		t.Fatalf("counter = %d after drain, want 3 (duplicate applied?)", v)
	}
	var dups uint64
	n.Do(func(r *store.Replica) { _, dups = r.DeliveryStats() })
	if dups != 1 {
		t.Fatalf("TxnsDuplicate = %d, want 1", dups)
	}
}

// TestCorruptFrameDropsConnectionOnly sends garbage then valid frames on
// a fresh connection: the receiver must drop the bad stream and keep
// serving new ones.
func TestCorruptFrameDropsConnectionOnly(t *testing.T) {
	n, err := NewNode("n", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	rawSend(t, n.Addr(), []byte("this is not a frame"))
	txns := captureTxns("x", "c", 1)
	rawSend(t, n.Addr(), encodeBatch(t, txns[0]))
	waitUntil(t, "valid frame after corrupt stream", func() bool {
		return n.Clock().Get("x") == 1
	})
}

// TestCleanShutdownFlushesQueue closes a node while its outbound queue
// is still full: Close must drain everything to the live peer before
// returning, dropping nothing.
func TestCleanShutdownFlushesQueue(t *testing.T) {
	// A huge flush interval guarantees the queue is non-empty at Close:
	// the sender is still sitting in its coalescing window.
	cfg := Config{FlushInterval: time.Minute, MaxBatchTxns: 4096}
	a, err := NewNodeWithConfig("a", "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer("b", b.Addr())

	commitN(a, "c", 200)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	s := a.Stats()
	if s.TxnsDropped != 0 {
		t.Fatalf("clean shutdown dropped %d txns", s.TxnsDropped)
	}
	if s.TxnsSent != 200 || s.QueueDepth != 0 {
		t.Fatalf("after drain: %+v", s)
	}
	waitUntil(t, "all txns delivered", func() bool { return counterValue(b, "c") == 200 })
}

// TestShutdownAbandonsUnreachablePeer bounds Close when a peer never
// comes up: the drain deadline must expire, the queue is dropped and
// accounted, and Close returns promptly.
func TestShutdownAbandonsUnreachablePeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	cfg := Config{
		BackoffMin:   time.Millisecond,
		BackoffMax:   10 * time.Millisecond,
		DrainTimeout: 50 * time.Millisecond,
	}
	a, err := NewNodeWithConfig("a", "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.AddPeer("dead", deadAddr)
	commitN(a, "c", 5)

	start := time.Now()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close took %v with an unreachable peer", elapsed)
	}
	if s := a.Stats(); s.TxnsDropped != 5 {
		t.Fatalf("TxnsDropped = %d, want 5 (stats: %+v)", s.TxnsDropped, s)
	}
}

// TestBackpressureBlocksThenCloseReleases fills a tiny queue against a
// dead peer: the committing goroutine must block (counted), and Close
// must release it.
func TestBackpressureBlocksThenCloseReleases(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	cfg := Config{
		QueueCap:     2,
		MaxBatchTxns: 1, // keep at most one txn in flight: the queue must fill
		BackoffMin:   time.Millisecond,
		BackoffMax:   10 * time.Millisecond,
		DrainTimeout: 20 * time.Millisecond,
	}
	a, err := NewNodeWithConfig("a", "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.AddPeer("dead", deadAddr)

	done := make(chan struct{})
	go func() {
		defer close(done)
		commitN(a, "c", 20) // queue cap 2: must block long before 20
	}()
	waitUntil(t, "backpressure engages", func() bool {
		return a.Stats().BackpressureWaits > 0
	})
	select {
	case <-done:
		t.Fatal("commits finished despite a full queue to a dead peer")
	default:
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not release the blocked committer")
	}
}

// TestLegacyTransportStillConverges runs the original per-connection
// transport end to end: a mixed cluster (one legacy sender, streaming
// receivers) must converge, proving v0 frames decode through the
// versioned entry point.
func TestLegacyTransportStillConverges(t *testing.T) {
	legacy, err := NewNodeWithConfig("old", "127.0.0.1:0", Config{Legacy: true})
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	modern, err := NewNode("new", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer modern.Close()
	legacy.AddPeer("new", modern.Addr())
	modern.AddPeer("old", legacy.Addr())

	commitN(legacy, "c", 10)
	commitN(modern, "c", 10)
	waitUntil(t, "mixed-transport convergence", func() bool {
		return counterValue(legacy, "c") == 20 && counterValue(modern, "c") == 20
	})
	if s := legacy.Stats(); s.FramesSent != 10 || s.Dials != 10 {
		t.Fatalf("legacy transport stats: %+v", s)
	}
}

// TestUnackedFrameRetries pins the acknowledged-delivery contract: a
// frame written successfully to a peer that dies before confirming it is
// NOT counted sent — the sender must treat the missing ack as a failure
// and retry the batch on a fresh connection. (A write reaching a kernel
// buffer proves nothing; the chaos soak hits this constantly under
// connection churn.)
func TestUnackedFrameRetries(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var mu sync.Mutex
	framesSwallowed, framesAcked := 0, 0
	go func() {
		first := true
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if first {
				// Swallow the frame and die without acking: the bytes
				// were "successfully written" by the sender and are gone.
				first = false
				go func(c net.Conn) {
					defer c.Close()
					if _, err := readFrame(c, new([]byte), defaultMaxFrame); err == nil {
						mu.Lock()
						framesSwallowed++
						mu.Unlock()
					}
				}(conn)
				continue
			}
			go func(c net.Conn) {
				defer c.Close()
				for {
					if _, err := readFrame(c, new([]byte), defaultMaxFrame); err != nil {
						return
					}
					mu.Lock()
					framesAcked++
					mu.Unlock()
					if err := writeAck(c); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	cfg := Config{
		BackoffMin:   time.Millisecond,
		BackoffMax:   10 * time.Millisecond,
		WriteTimeout: 100 * time.Millisecond, // ack wait bound
	}
	a, err := NewNodeWithConfig("a", "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.AddPeer("b", ln.Addr().String())

	commitN(a, "k", 7)
	// The commits may split across several batch frames; wait for every
	// transaction to be acknowledged, not just the first frame.
	waitUntil(t, "acked delivery after a swallowed frame", func() bool {
		return a.Stats().TxnsSent >= 7
	})
	s := a.Stats()
	if s.TxnsSent != 7 {
		t.Fatalf("TxnsSent = %d, want 7 (every txn acked exactly once)", s.TxnsSent)
	}
	if s.SendErrors == 0 {
		t.Fatal("the swallowed (unacked) frame was not counted as a send error")
	}
	mu.Lock()
	defer mu.Unlock()
	if framesSwallowed != 1 || framesAcked < 1 {
		t.Fatalf("swallowed=%d acked=%d, want exactly 1 swallowed and >=1 acked", framesSwallowed, framesAcked)
	}
}
