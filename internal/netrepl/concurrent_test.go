package netrepl

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ipa/internal/store"
)

// The tests in this file exercise the lock-free node surface: many client
// goroutines commit on every node of a live mesh while the per-origin
// apply pipeline races them. Run under -race; together with the store
// property suite they are the safety proof of the sharded replica core on
// real sockets.

// waitQuiet polls until every node's clock matches and no apply or send
// queue holds work.
func waitQuiet(t *testing.T, nodes []*Node) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		quiet := true
		var base string
		for i, n := range nodes {
			if n.Stats().QueueDepth != 0 || n.Pending() != 0 {
				quiet = false
				break
			}
			vc := n.Clock().String()
			if i == 0 {
				base = vc
			} else if vc != base {
				quiet = false
				break
			}
		}
		if quiet {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("cluster did not quiesce in time")
}

// TestConcurrentClientsAndApplyPathConverge runs several committer
// goroutines per node — private counters for per-key read-your-writes,
// one shared set for cross-replica merge — while the receive path applies
// remote transactions concurrently. Every client read must be
// linearizable per key, and after quiescence all nodes must agree.
func TestConcurrentClientsAndApplyPathConverge(t *testing.T) {
	nodes := newTrio(t)
	const (
		workers = 3
		txnsPer = 80
	)
	var wg sync.WaitGroup
	for _, n := range nodes {
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(n *Node, g int) {
				defer wg.Done()
				private := fmt.Sprintf("priv/%s/%d", n.ID(), g)
				for i := 0; i < txnsPer; i++ {
					tx := n.Begin()
					store.CounterAt(tx, private).Add(1)
					store.AWSetAt(tx, "shared").Add(fmt.Sprintf("%s-%d-%d", n.ID(), g, i), "")
					tx.Commit()

					check := n.Begin()
					got := store.CounterAt(check, private).Value()
					check.Commit()
					if got != int64(i+1) {
						t.Errorf("%s/%d: read-own-writes broken: %d after %d commits", n.ID(), g, got, i+1)
						return
					}
				}
			}(n, g)
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	waitQuiet(t, nodes)

	want := len(nodes) * workers * txnsPer
	var base string
	for i, n := range nodes {
		tx := n.Begin()
		size := store.AWSetAt(tx, "shared").Size()
		digest := fmt.Sprint(size)
		for _, m := range nodes {
			for g := 0; g < workers; g++ {
				digest += fmt.Sprintf(" %d", store.CounterAt(tx, fmt.Sprintf("priv/%s/%d", m.ID(), g)).Value())
			}
		}
		tx.Commit()
		if size != want {
			t.Fatalf("%s: shared set has %d elements, want %d", n.ID(), size, want)
		}
		if i == 0 {
			base = digest
		} else if digest != base {
			t.Fatalf("%s diverged:\n%s\nvs\n%s", n.ID(), digest, base)
		}
	}
}

// TestCrossShardAtomicityOnSockets is the multi-key atomicity property on
// the live mesh: every transaction increments all K counters, reader
// transactions on every node continuously assert the K values are equal
// (remote effect groups must attach whole, under all their shard locks),
// and the final state must be identical everywhere.
func TestCrossShardAtomicityOnSockets(t *testing.T) {
	nodes := newTrio(t)
	keys := make([]string, 5)
	for i := range keys {
		keys[i] = fmt.Sprintf("atomic/k%02d", i*11)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for _, n := range nodes {
		readers.Add(1)
		go func(n *Node) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx := n.Begin()
				refs := make([]store.CounterRef, len(keys))
				for i, k := range keys {
					refs[i] = store.CounterAt(tx, k)
				}
				base := refs[0].Value()
				for i, ref := range refs {
					if v := ref.Value(); v != base {
						t.Errorf("%s: torn effect group: %s=%d but %s=%d", n.ID(), keys[0], base, keys[i], v)
						tx.Commit()
						return
					}
				}
				tx.Commit()
			}
		}(n)
	}

	const txnsPer = 60
	var writers sync.WaitGroup
	for _, n := range nodes {
		for g := 0; g < 2; g++ {
			writers.Add(1)
			go func(n *Node) {
				defer writers.Done()
				for i := 0; i < txnsPer; i++ {
					tx := n.Begin()
					refs := make([]store.CounterRef, len(keys))
					for j, k := range keys {
						refs[j] = store.CounterAt(tx, k)
					}
					for _, ref := range refs {
						ref.Add(1)
					}
					tx.Commit()
				}
			}(n)
		}
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if t.Failed() {
		return
	}
	waitQuiet(t, nodes)

	want := int64(len(nodes) * 2 * txnsPer)
	for _, n := range nodes {
		tx := n.Begin()
		for _, k := range keys {
			if v := store.CounterAt(tx, k).Value(); v != want {
				t.Fatalf("%s: %s = %d, want %d", n.ID(), k, v, want)
			}
		}
		tx.Commit()
	}
}

// TestConcurrentClientsUnderChurnAndPause mixes the concurrency suite
// with the fault hooks: clients commit from several goroutines per node
// while one node is paused (apply pipeline frozen, frames still acked)
// and inbound connections are repeatedly killed. Everything must still
// converge exactly once per transaction after the faults lift.
func TestConcurrentClientsUnderChurnAndPause(t *testing.T) {
	nodes := newTrio(t)
	nodes[1].SetPaused(true)

	stop := make(chan struct{})
	var chaos sync.WaitGroup
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(3 * time.Millisecond):
				nodes[i%len(nodes)].DropConnections()
			}
		}
	}()

	const (
		workers = 2
		txnsPer = 50
	)
	var wg sync.WaitGroup
	for _, n := range nodes {
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(n *Node, g int) {
				defer wg.Done()
				for i := 0; i < txnsPer; i++ {
					tx := n.Begin()
					store.CounterAt(tx, "churn/total").Add(1)
					store.AWSetAt(tx, fmt.Sprintf("churn/%s", n.ID())).Add(fmt.Sprintf("%d-%d", g, i), "")
					tx.Commit()
				}
			}(n, g)
		}
	}
	wg.Wait()
	close(stop)
	chaos.Wait()
	nodes[1].SetPaused(false)
	waitQuiet(t, nodes)

	want := int64(len(nodes) * workers * txnsPer)
	for _, n := range nodes {
		tx := n.Begin()
		v := store.CounterAt(tx, "churn/total").Value()
		tx.Commit()
		if v != want {
			t.Fatalf("%s: total = %d, want %d (lost or duplicated transactions)", n.ID(), v, want)
		}
	}
}

// TestPauseFreezesDependencyWaiters pins the pause semantics: a
// transaction already parked in the apply pipeline waiting for a causal
// dependency must not apply when that dependency arrives mid-pause —
// nothing applies while the node is "crashed", matching the simulator.
func TestPauseFreezesDependencyWaiters(t *testing.T) {
	n, err := NewNode("n", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	xs := captureTxns("x", "cx", 1)
	ys := captureTxns("y", "cy", 1)
	// Make y's transaction causally depend on x's.
	ys[0].Deps.Set("x", xs[0].LastSeq)

	// Deliver y first: its applier parks waiting for the dependency.
	rawSend(t, n.Addr(), encodeBatch(t, ys[0]))
	waitUntil(t, "dependency wait parked", func() bool { return n.Pending() == 1 })

	n.SetPaused(true)
	// The dependency arrives mid-pause. Neither transaction may apply.
	rawSend(t, n.Addr(), encodeBatch(t, xs[0]))
	waitUntil(t, "dependency accepted into pipeline", func() bool { return n.Pending() == 2 })
	time.Sleep(30 * time.Millisecond)
	if got := n.Clock().Sum(); got != 0 {
		t.Fatalf("applied during pause: clock %s", n.Clock())
	}

	n.SetPaused(false)
	waitUntil(t, "drain after unpause", func() bool {
		return n.Pending() == 0 && n.Clock().Get("x") == xs[0].LastSeq && n.Clock().Get("y") == ys[0].LastSeq
	})
}
