package netrepl

import (
	"fmt"
	"hash/fnv"
	"log"
	"math/rand"
	"net"
	"sync/atomic"
	"time"

	"ipa/internal/clock"
	"ipa/internal/store"
)

// peerConn is one peer's outbound replication stream: a bounded queue of
// committed transactions drained by a dedicated sender goroutine that
// owns the (single, persistent) connection to the peer.
type peerConn struct {
	n    *Node
	id   clock.ReplicaID
	addr string

	// ch is the bounded outbound queue. Commits enqueue (blocking when
	// full — backpressure), the sender goroutine coalesces into batches.
	ch chan store.WireTxn

	// quit is closed by Node.RemovePeer (decommission): the sender
	// flushes what it can without retrying and exits. Node close uses
	// n.closed instead, which allows a drain window.
	quit chan struct{}

	// Sender-goroutine state; no lock needed.
	conn      net.Conn
	connected bool       // a dial has succeeded at least once
	rng       *rand.Rand // backoff jitter; private so no global rand state

	// enc builds this peer's batch frames into a buffer reused across
	// frames — the steady-state send path allocates nothing per frame.
	enc *store.FrameEncoder
	// oversizedLogged limits the undeliverable-transaction log line to
	// once per peer (the counter keeps the full tally).
	oversizedLogged bool
}

func newPeerConn(n *Node, id clock.ReplicaID, addr string) *peerConn {
	// A deterministic per-peer seed keeps backoff jitter off the global
	// math/rand state (replays of the deterministic harness must not
	// consume shared randomness) while still decorrelating peers.
	h := fnv.New64a()
	h.Write([]byte(n.id))
	h.Write([]byte{0})
	h.Write([]byte(id))
	return &peerConn{
		n: n, id: id, addr: addr,
		ch:   make(chan store.WireTxn, n.cfg.QueueCap),
		quit: make(chan struct{}),
		rng:  rand.New(rand.NewSource(int64(h.Sum64()))),
		enc:  store.NewFrameEncoder(n.cfg.WireVersion),
	}
}

// enqueue hands one committed transaction to the sender. When the queue
// is full it blocks until the sender frees space (counted as a
// backpressure wait) or the node is closed.
func (p *peerConn) enqueue(w store.WireTxn) {
	// Once the node is closing the sender may already have exited;
	// anything enqueued now would vanish uncounted, so drop it visibly.
	select {
	case <-p.n.closed:
		atomic.AddUint64(&p.n.m.txnsDropped, 1)
		return
	default:
	}
	select {
	case p.ch <- w:
		return
	default:
	}
	atomic.AddUint64(&p.n.m.backpressureWaits, 1)
	select {
	case p.ch <- w:
	case <-p.n.closed:
		atomic.AddUint64(&p.n.m.txnsDropped, 1)
	}
}

// run is the sender loop: collect a batch, deliver it (with reconnects),
// repeat. On node close it flushes what it can before the drain deadline
// and exits.
func (p *peerConn) run() {
	defer p.n.wg.Done()
	defer func() {
		if p.conn != nil {
			p.conn.Close()
		}
	}()
	for {
		batch := p.collect()
		if batch == nil {
			return
		}
		if !p.deliver(batch) {
			// Drain deadline expired with the peer unreachable: account
			// for everything we are abandoning and stop.
			dropped := uint64(len(batch) + len(p.ch))
			atomic.AddUint64(&p.n.m.txnsDropped, dropped)
			return
		}
	}
}

// collect blocks for the next transaction, then keeps the batch open for
// FlushInterval (or until MaxBatchTxns) so a commit burst coalesces into
// one frame. After Close it returns whatever is queued without waiting,
// and nil once the queue is empty.
func (p *peerConn) collect() []store.WireTxn {
	var first store.WireTxn
	select {
	case first = <-p.ch:
	case <-p.n.closed:
		select {
		case first = <-p.ch:
		default:
			return nil
		}
	case <-p.quit:
		select {
		case first = <-p.ch:
		default:
			return nil
		}
	}
	batch := append(make([]store.WireTxn, 0, p.n.cfg.MaxBatchTxns), first)
	timer := time.NewTimer(p.n.cfg.FlushInterval)
	defer timer.Stop()
	drain := func() []store.WireTxn {
		for len(batch) < p.n.cfg.MaxBatchTxns {
			select {
			case w := <-p.ch:
				batch = append(batch, w)
			default:
				return batch
			}
		}
		return batch
	}
	for len(batch) < p.n.cfg.MaxBatchTxns {
		select {
		case w := <-p.ch:
			batch = append(batch, w)
		case <-timer.C:
			return batch
		case <-p.n.closed:
			return drain()
		case <-p.quit:
			return drain()
		}
	}
	return batch
}

// deliver writes the batch as one frame, dialing or re-dialing as needed
// with exponential backoff + jitter. It retries until the frame is on the
// wire; it gives up (returning false) only after Close once the drain
// deadline has passed. Retrying a partially written frame can duplicate
// transactions — the receiver deduplicates by origin sequence.
func (p *peerConn) deliver(batch []store.WireTxn) bool {
	// Broadcast-after-fsync: nothing leaves this node before its log
	// record is durable. A peer holding a transaction the crashed origin
	// forgot would be worse than loss — the recovered origin reuses the
	// forgotten sequence numbers, and the mesh would hold two different
	// transactions under one identity. Commits are stamped with their
	// log sequence at append time (see Node.broadcast); waiting on the
	// batch's maximum covers every record in it, and the group commit
	// usually already has (the committer's own wait races this one).
	if p.n.wal != nil {
		var maxSeq uint64
		for i := range batch {
			if s := batch[i].WALSeq(); s > maxSeq {
				maxSeq = s
			}
		}
		if maxSeq > 0 {
			if err := p.n.wal.WaitSynced(maxSeq); err != nil {
				p.n.walFailed(err)
			}
		}
	}
	// The frame aliases the peer's reusable encoder buffer; it stays
	// valid through the retry loop below because nothing else encodes on
	// this goroutine until deliver returns (the split path re-encodes
	// only after the first half's frame is fully written).
	frame, err := p.enc.Encode(batch)
	if err != nil {
		// Encoding is deterministic, so this is a programming error
		// (an op type without a wire codec). Skipping the batch would
		// open a permanent causal gap at every receiver; fail loudly
		// instead.
		panic(fmt.Sprintf("netrepl: encode batch: %v (op type not registered with the crdt wire codec?)", err))
	}
	if len(frame) > p.n.cfg.MaxFrame {
		// The receiver refuses frames this large; retrying the same
		// frame would wedge replication forever. Split and retry.
		if len(batch) > 1 {
			half := len(batch) / 2
			return p.deliver(batch[:half]) && p.deliver(batch[half:])
		}
		// A single transaction too large for any frame can never be
		// delivered (the legacy transport lost these silently — here it
		// is counted, and announced once per peer). Every receiver will
		// stall on the causal gap this opens: the origin's later
		// transactions queue in reorder buffers forever — until the
		// receiver's stall detector fires (Config.StallWarn) and the
		// site is recovered by state transfer. See DESIGN.md
		// ("Oversized transactions").
		if !p.oversizedLogged {
			p.oversizedLogged = true
			w := &batch[0]
			log.Printf("netrepl: node %s dropping undeliverable transaction for peer %s: origin %s seq %d..%d encodes to %d bytes (MaxFrame %d); receivers will stall on the causal gap",
				p.n.id, p.id, w.Origin, w.FirstSeq, w.LastSeq, len(frame), p.n.cfg.MaxFrame)
		}
		atomic.AddUint64(&p.n.m.sendErrors, 1)
		atomic.AddUint64(&p.n.m.txnsDropped, 1)
		return true
	}
	backoff := p.n.cfg.BackoffMin
	for {
		if p.conn == nil && !p.dial() {
			atomic.AddUint64(&p.n.m.sendErrors, 1)
			if !p.pause(&backoff) {
				return false
			}
			continue
		}
		p.conn.SetWriteDeadline(time.Now().Add(p.n.cfg.WriteTimeout))
		if err := writeFrame(p.conn, frame); err != nil {
			atomic.AddUint64(&p.n.m.sendErrors, 1)
			p.conn.Close()
			p.conn = nil
			if !p.pause(&backoff) {
				return false
			}
			continue
		}
		// A successful write only proves the bytes reached a kernel
		// buffer; if the peer dies before reading them the frame is
		// gone and the causal gap would wedge the ring forever. Delivery
		// counts only when the peer acknowledges the applied frame;
		// anything else retries the batch on a fresh connection (the
		// receiver deduplicates by origin sequence).
		if err := readAck(p.conn, time.Now().Add(p.n.cfg.WriteTimeout)); err != nil {
			atomic.AddUint64(&p.n.m.sendErrors, 1)
			p.conn.Close()
			p.conn = nil
			if !p.pause(&backoff) {
				return false
			}
			continue
		}
		atomic.AddUint64(&p.n.m.framesSent, 1)
		atomic.AddUint64(&p.n.m.txnsSent, uint64(len(batch)))
		atomic.AddUint64(&p.n.m.bytesSent, uint64(len(frame)+4))
		return true
	}
}

// dial attempts one connection to the peer.
func (p *peerConn) dial() bool {
	conn, err := net.DialTimeout("tcp", p.addr, p.n.cfg.DialTimeout)
	if err != nil {
		return false
	}
	p.conn = conn
	atomic.AddUint64(&p.n.m.dials, 1)
	if p.connected {
		atomic.AddUint64(&p.n.m.reconnects, 1)
	}
	p.connected = true
	return true
}

// pause sleeps the current backoff (with jitter) and doubles it up to
// BackoffMax. It returns false when the node is closed and the drain
// deadline has passed — the signal to abandon the queue.
func (p *peerConn) pause(backoff *time.Duration) bool {
	d := *backoff/2 + time.Duration(p.rng.Int63n(int64(*backoff/2)+1))
	if *backoff *= 2; *backoff > p.n.cfg.BackoffMax {
		*backoff = p.n.cfg.BackoffMax
	}
	select {
	case <-p.quit:
		// Decommissioned peer: no retry window — the site is gone.
		return false
	default:
	}
	select {
	case <-p.n.closed:
		remaining := time.Until(p.n.drainDeadline())
		if remaining <= 0 {
			return false
		}
		if d > remaining {
			d = remaining
		}
		time.Sleep(d)
		return time.Now().Before(p.n.drainDeadline())
	case <-time.After(d):
		return true
	}
}
