package store

import (
	"os"
	"path/filepath"
	"testing"

	"ipa/internal/wan"
)

func TestSnapshotRoundTrip(t *testing.T) {
	sim, c := newTestCluster(11)
	east := c.Replica(wan.USEast)
	tx := east.Begin()
	AWSetAt(tx, "players").Add("alice", "profile")
	AWSetAt(tx, "players").Add("bob", "")
	CounterAt(tx, "budget").Add(40)
	tx.Commit()
	tx = east.Begin()
	AWSetAt(tx, "players").Remove("bob")
	tx.Commit()
	sim.Run()

	data, vc, err := east.CaptureSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !vc.LEq(east.Clock()) || !east.Clock().LEq(vc) {
		t.Fatalf("snapshot vector %s != replica clock %s", vc, east.Clock())
	}

	snap, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Replica != wan.USEast {
		t.Fatalf("snapshot replica = %q", snap.Replica)
	}

	// Restore into a fresh replica (a separate cluster) and read back.
	_, c2 := newTestCluster(12)
	fresh := c2.Replica(wan.USEast)
	fresh.RestoreSnapshot(snap)
	rtx := fresh.Begin()
	set := AWSetAt(rtx, "players")
	if !set.Contains("alice") {
		t.Fatal("restored replica lost alice")
	}
	if p, _ := set.Payload("alice"); p != "profile" {
		t.Fatalf("restored payload = %q", p)
	}
	if set.Contains("bob") {
		t.Fatal("restored replica resurrected a removed element")
	}
	if v := CounterAt(rtx, "budget").Value(); v != 40 {
		t.Fatalf("restored counter = %d, want 40", v)
	}
	rtx.Commit()
	if got := fresh.Clock(); !vc.LEq(got) {
		t.Fatalf("restored clock %s does not cover snapshot vector %s", got, vc)
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	sim, c := newTestCluster(13)
	east := c.Replica(wan.USEast)
	tx := east.Begin()
	AWSetAt(tx, "s").Add("x", "")
	tx.Commit()
	sim.Run()
	data, _, err := east.CaptureSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	for name, mangle := range map[string]func([]byte) []byte{
		"flip-body-byte": func(d []byte) []byte { d[len(d)-1] ^= 0xFF; return d },
		"flip-crc":       func(d []byte) []byte { d[5] ^= 0xFF; return d },
		"bad-magic":      func(d []byte) []byte { d[0] = 'X'; return d },
		"bad-version":    func(d []byte) []byte { d[4] = 99; return d },
		"truncated":      func(d []byte) []byte { return d[:len(d)/2] },
		"trailing":       func(d []byte) []byte { return append(d, 0xAB) },
	} {
		t.Run(name, func(t *testing.T) {
			bad := mangle(append([]byte(nil), data...))
			if _, err := DecodeSnapshot(bad); err == nil {
				t.Fatal("corrupt snapshot decoded without error")
			}
		})
	}
}

func TestSnapshotFileAtomicityAndFallback(t *testing.T) {
	sim, c := newTestCluster(14)
	east := c.Replica(wan.USEast)
	tx := east.Begin()
	AWSetAt(tx, "s").Add("x", "")
	tx.Commit()
	sim.Run()
	data, vc, err := east.CaptureSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := WriteSnapshotFile(dir, data); err != nil {
		t.Fatal(err)
	}
	snap, ok := ReadSnapshotFile(dir)
	if !ok {
		t.Fatal("snapshot file did not read back")
	}
	if !snap.VC.LEq(vc) || !vc.LEq(snap.VC) {
		t.Fatalf("read-back vector %s, want %s", snap.VC, vc)
	}
	// A leftover temp file (crash between write and rename) is invisible.
	if err := os.WriteFile(filepath.Join(dir, SnapshotFile+".tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := ReadSnapshotFile(dir); !ok {
		t.Fatal("temp-file junk broke the committed snapshot")
	}
	// In-place corruption: the loader refuses, recovery falls back to
	// full WAL replay.
	raw, err := os.ReadFile(filepath.Join(dir, SnapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(filepath.Join(dir, SnapshotFile), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := ReadSnapshotFile(dir); ok {
		t.Fatal("corrupt snapshot file accepted")
	}
	// Missing directory is simply "no snapshot".
	if _, ok := ReadSnapshotFile(filepath.Join(dir, "nope")); ok {
		t.Fatal("missing dir produced a snapshot")
	}
}

// The snapshot vector counts exactly the transactions in the image: a
// capture concurrent with commits must not tear (clock ahead of state or
// vice versa). Hammer captures while another goroutine commits.
func TestSnapshotConsistentCutUnderCommits(t *testing.T) {
	sim, c := newTestCluster(15)
	east := c.Replica(wan.USEast)
	for i := 0; i < 50; i++ {
		tx := east.Begin()
		CounterAt(tx, "n").Add(1)
		tx.Commit()
		data, vc, err := east.CaptureSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		snap, err := DecodeSnapshot(data)
		if err != nil {
			t.Fatal(err)
		}
		// Own-origin events committed = counter increments applied
		// locally; the cut must agree with itself.
		_, c2 := newTestCluster(16)
		fresh := c2.Replica(wan.USEast)
		fresh.RestoreSnapshot(snap)
		rtx := fresh.Begin()
		got := CounterAt(rtx, "n").Value()
		rtx.Commit()
		if got != int64(i+1) {
			t.Fatalf("iter %d: snapshot holds counter %d with vector %s", i, got, vc)
		}
	}
	sim.Run()
}
