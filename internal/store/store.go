// Package store implements the replicated database the IPA runtime needs
// (the paper uses SwiftCloud [48]): a key-value store geo-replicated
// across data centers, with
//
//   - causal consistency — transactions commit locally and replicate
//     asynchronously, delivered remotely only after their causal
//     dependencies;
//   - highly available transactions — a transaction's updates apply
//     atomically at every replica;
//   - per-object type-specific conflict resolution — values are the
//     operation-based CRDTs of package crdt;
//   - stability tracking — a causal cut delivered at every replica, used
//     to garbage-collect CRDT metadata (tombstones, touch graveyards).
//
// Replicas live inside a wan.Sim discrete-event simulation, which injects
// the inter-datacenter latencies; all execution is deterministic.
package store

import (
	"fmt"

	"ipa/internal/clock"
	"ipa/internal/crdt"
	"ipa/internal/wan"
)

// Cluster is a set of replicas of one logical database.
type Cluster struct {
	sim      *wan.Sim
	latency  *wan.Latency
	replicas map[clock.ReplicaID]*Replica
	order    []clock.ReplicaID
	stab     *clock.Stability

	// partitioned links: messages are buffered and flushed on heal.
	partitioned map[[2]clock.ReplicaID]bool
	blocked     map[[2]clock.ReplicaID][]txnMsg

	// onCommit, when set, receives the wire form of every committed
	// update transaction (see SetOnCommit).
	onCommit func(WireTxn)

	// Stats
	MessagesSent  uint64
	TxnsCommitted uint64
	StabilityRuns uint64
}

// NewCluster creates one replica per id, connected by the latency model.
func NewCluster(sim *wan.Sim, latency *wan.Latency, ids []clock.ReplicaID) *Cluster {
	c := &Cluster{
		sim:         sim,
		latency:     latency,
		replicas:    make(map[clock.ReplicaID]*Replica, len(ids)),
		order:       append([]clock.ReplicaID(nil), ids...),
		stab:        clock.NewStability(ids),
		partitioned: map[[2]clock.ReplicaID]bool{},
		blocked:     map[[2]clock.ReplicaID][]txnMsg{},
	}
	for _, id := range ids {
		c.replicas[id] = &Replica{
			id:      id,
			cluster: c,
			objects: map[string]crdt.CRDT{},
			vc:      clock.New(),
		}
	}
	return c
}

// Sim returns the simulation driving this cluster.
func (c *Cluster) Sim() *wan.Sim { return c.sim }

// Replica returns the replica with the given id.
func (c *Cluster) Replica(id clock.ReplicaID) *Replica {
	r, ok := c.replicas[id]
	if !ok {
		panic(fmt.Sprintf("store: unknown replica %q", id))
	}
	return r
}

// Replicas returns the replica ids in creation order.
func (c *Cluster) Replicas() []clock.ReplicaID { return c.order }

// SetPartitioned blocks (or unblocks) the link between two replicas in
// both directions. Messages sent while partitioned are buffered and
// flushed when the partition heals — replication resumes, no update is
// lost (the availability model of weak consistency).
func (c *Cluster) SetPartitioned(a, b clock.ReplicaID, partitioned bool) {
	c.partitioned[[2]clock.ReplicaID{a, b}] = partitioned
	c.partitioned[[2]clock.ReplicaID{b, a}] = partitioned
	if !partitioned {
		for _, key := range [][2]clock.ReplicaID{{a, b}, {b, a}} {
			msgs := c.blocked[key]
			delete(c.blocked, key)
			for _, m := range msgs {
				c.send(key[0], key[1], m)
			}
		}
	}
}

// SetPaused freezes (or thaws) a replica's delivery pipeline — the
// crash/recovery fault hook. While paused, remote transactions still
// arrive but queue in the delivery buffer without applying, exactly as if
// the replica's application process had stalled; local commits are
// unaffected (they do not pass through the delivery queue). Unpausing
// drains the buffer in causal order, so no update is lost.
func (c *Cluster) SetPaused(id clock.ReplicaID, paused bool) {
	r := c.Replica(id)
	r.paused = paused
	if !paused {
		r.drain()
	}
}

// txnMsg is a committed transaction in flight between replicas.
type txnMsg struct {
	origin  clock.ReplicaID
	deps    clock.Vector // causal dependencies (origin's cut before commit)
	firstSq uint64       // origin sequence before this txn's updates
	lastSeq uint64       // origin sequence after this txn's updates
	updates []Update
}

func (c *Cluster) send(from, to clock.ReplicaID, m txnMsg) {
	if c.partitioned[[2]clock.ReplicaID{from, to}] {
		c.blocked[[2]clock.ReplicaID{from, to}] = append(c.blocked[[2]clock.ReplicaID{from, to}], m)
		return
	}
	c.MessagesSent++
	d := c.latency.OneWay(string(from), string(to), c.sim.Rand())
	dst := c.replicas[to]
	c.sim.After(d, func() { dst.receive(m) })
}

// Stabilize computes the stability horizon (the causal cut every replica
// has delivered) and lets every CRDT compact metadata below it. Call it
// periodically from the harness, or once after a run.
//
// Alongside the horizon it hands compaction the frontier — each origin's
// current commit count, which upper-bounds every event concurrent with a
// newly stable one. Remove-wins tombstones need it to decide when they
// can finally be discarded (crdt.FrontierCompacter): stability of the
// tombstone alone does not rule out a concurrent add still in flight.
func (c *Cluster) Stabilize() clock.Vector {
	c.StabilityRuns++
	frontier := clock.New()
	for _, id := range c.order {
		c.stab.Ack(id, c.replicas[id].vc.Clone())
		frontier.Set(id, c.replicas[id].vc.Get(id))
	}
	h := c.stab.Horizon()
	for _, id := range c.order {
		c.replicas[id].CompactAll(h, frontier)
	}
	return h
}

// Update is one CRDT operation against a key.
type Update struct {
	Key string
	Op  crdt.Op
}

// Replica is one data center's copy of the database. Within the
// simulation a replica processes transactions serially (the sim is
// single-threaded), which gives per-replica serializable local execution —
// the same assumption the paper's application servers make.
type Replica struct {
	id      clock.ReplicaID
	cluster *Cluster
	objects map[string]crdt.CRDT
	vc      clock.Vector // delivered cut; vc[id] == local commit sequence
	seq     uint64       // local event counter (tags)
	pending []txnMsg     // causal delivery queue
	paused  bool         // fault injection: buffer deliveries, apply nothing

	// Stats
	TxnsExecuted  uint64
	TxnsDelivered uint64
	TxnsDuplicate uint64
	QueuedMax     int
}

// ID returns the replica identifier.
func (r *Replica) ID() clock.ReplicaID { return r.id }

// Clock returns a copy of the replica's delivered causal cut.
func (r *Replica) Clock() clock.Vector { return r.vc.Clone() }

// Object returns the CRDT stored at key, creating it with mk when absent.
// Reads outside transactions observe the replica's current causal state.
func (r *Replica) Object(key string, mk func() crdt.CRDT) crdt.CRDT {
	obj, ok := r.objects[key]
	if !ok {
		obj = mk()
		r.objects[key] = obj
	}
	return obj
}

// Lookup returns the CRDT stored at key if it exists.
func (r *Replica) Lookup(key string) (crdt.CRDT, bool) {
	obj, ok := r.objects[key]
	return obj, ok
}

// Begin starts a highly available transaction at this replica.
func (r *Replica) Begin() *Txn {
	return &Txn{r: r, deps: r.vc.Clone(), firstSeq: r.seq}
}

// receive integrates a remote transaction, enforcing causal delivery:
// the transaction applies only when its dependencies are satisfied and
// the origin's updates are contiguous (per-origin FIFO).
func (r *Replica) receive(m txnMsg) {
	r.pending = append(r.pending, m)
	if len(r.pending) > r.QueuedMax {
		r.QueuedMax = len(r.pending)
	}
	r.drain()
}

func (r *Replica) drain() {
	if r.paused {
		return
	}
	progress := true
	for progress {
		progress = false
		for i, m := range r.pending {
			if m.lastSeq <= r.vc.Get(m.origin) {
				// A duplicate whose first copy has since been applied
				// (at-least-once transports retry batches); it can never
				// become deliverable, so discard it.
				r.TxnsDuplicate++
				r.pending = append(r.pending[:i], r.pending[i+1:]...)
				progress = true
				break
			}
			if r.deliverable(m) {
				r.apply(m)
				r.pending = append(r.pending[:i], r.pending[i+1:]...)
				progress = true
				break
			}
		}
	}
}

func (r *Replica) deliverable(m txnMsg) bool {
	if r.vc.Get(m.origin) != m.firstSq {
		return false // FIFO gap from the origin
	}
	return m.deps.LEq(r.vc)
}

func (r *Replica) apply(m txnMsg) {
	for _, u := range m.updates {
		obj, ok := r.objects[u.Key]
		if !ok {
			// Object type is implied by the op; instantiate lazily through
			// the shared constructor registry.
			obj = crdt.NewForOp(u.Op)
			r.objects[u.Key] = obj
		}
		obj.Apply(u.Op)
	}
	r.vc.Set(m.origin, m.lastSeq)
	r.TxnsDelivered++
}

// CompactAll lets every CRDT at this replica discard metadata made
// redundant by the stability horizon; frontier carries the per-origin
// commit counts of the stability round (see Cluster.Stabilize). Exposed so
// replication backends without a shared Cluster — one store per node, as
// in netrepl — can run the same compaction from a gathered global view.
func (r *Replica) CompactAll(horizon, frontier clock.Vector) {
	for _, obj := range r.objects {
		if fc, ok := obj.(crdt.FrontierCompacter); ok {
			fc.CompactWithFrontier(horizon, frontier)
		} else {
			obj.Compact(horizon)
		}
	}
}

// PendingCount reports the size of the causal delivery queue.
func (r *Replica) PendingCount() int { return len(r.pending) }
