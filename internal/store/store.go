// Package store implements the replicated database the IPA runtime needs
// (the paper uses SwiftCloud [48]): a key-value store geo-replicated
// across data centers, with
//
//   - causal consistency — transactions commit locally and replicate
//     asynchronously, delivered remotely only after their causal
//     dependencies;
//   - highly available transactions — a transaction's updates apply
//     atomically at every replica;
//   - per-object type-specific conflict resolution — values are the
//     operation-based CRDTs of package crdt;
//   - stability tracking — a causal cut delivered at every replica, used
//     to garbage-collect CRDT metadata (tombstones, touch graveyards).
//
// Two execution regimes share the same replica core:
//
//   - inside a wan.Sim discrete-event simulation (Cluster), execution is
//     single-threaded and deterministic — replication messages are
//     simulator events;
//   - under a real transport (package netrepl), one replica serves many
//     client goroutines while remote transactions apply concurrently
//     through ApplyExternal. The replica is sharded for this: object
//     state is split into key-hashed shards with per-shard locks, local
//     transactions take fine-grained two-phase shard locks, and remote
//     transactions from different origins apply in parallel as long as
//     they touch different shards.
//
// Replica locking discipline (the order below is the global acquisition
// order; taking locks in this order only is what makes the core
// deadlock-free — see DESIGN.md for the full argument):
//
//		commitMu  ≺  shard[0] … shard[numShards-1] (ascending)  ≺  clockMu
//
//	  - commitMu (per replica) is the tag window: it serialises local
//	    update transactions from their first NewTag to commit, so every
//	    transaction's event tags form a contiguous block of the origin's
//	    sequence space in commit order. Contiguity is load-bearing: remote
//	    FIFO delivery and the stability horizon both interpret a vector
//	    entry n as "all events ≤ n", which interleaved tag blocks would
//	    break. Read-only transactions never touch commitMu.
//	  - shard locks are taken in ascending index order. A transaction that
//	    needs a lower-indexed shard than one it holds first tries a
//	    non-blocking TryLock (safe in any order) and otherwise releases
//	    everything and reacquires the enlarged set in sorted order.
//	  - clockMu guards the delivered cut (vc) and is never held while
//	    waiting for any other lock; clockCond broadcasts every advance so
//	    ApplyExternal callers can wait for causal dependencies.
package store

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ipa/internal/clock"
	"ipa/internal/crdt"
	"ipa/internal/wan"
)

// Cluster is a set of replicas of one logical database.
type Cluster struct {
	sim      *wan.Sim
	latency  *wan.Latency
	replicas map[clock.ReplicaID]*Replica
	order    []clock.ReplicaID
	stab     *clock.Stability

	// partitioned links: messages are buffered and flushed on heal.
	partitioned map[[2]clock.ReplicaID]bool
	blocked     map[[2]clock.ReplicaID][]txnMsg

	// onCommit, when set, receives the wire form of every committed
	// update transaction (see SetOnCommit). It may return a wait
	// function, which the commit path invokes after releasing the tag
	// window and shard locks — the hook durable transports use to hold
	// Commit until the transaction is fsynced without stalling other
	// committers (see SetOnCommitSync).
	onCommit func(WireTxn) func()

	// Stats. Updated atomically: on a socket-backed cluster commits run
	// on arbitrary client goroutines. Read them only from a quiescent
	// cluster or via atomic loads.
	MessagesSent  uint64
	TxnsCommitted uint64
	StabilityRuns uint64
}

// NewCluster creates one replica per id, connected by the latency model.
func NewCluster(sim *wan.Sim, latency *wan.Latency, ids []clock.ReplicaID) *Cluster {
	c := &Cluster{
		sim:         sim,
		latency:     latency,
		replicas:    make(map[clock.ReplicaID]*Replica, len(ids)),
		order:       append([]clock.ReplicaID(nil), ids...),
		stab:        clock.NewStability(ids),
		partitioned: map[[2]clock.ReplicaID]bool{},
		blocked:     map[[2]clock.ReplicaID][]txnMsg{},
	}
	for _, id := range ids {
		r := &Replica{
			id:      id,
			cluster: c,
			vc:      clock.New(),
		}
		r.clockCond = sync.NewCond(&r.clockMu)
		for i := range r.shards {
			r.shards[i].objects = map[string]crdt.CRDT{}
		}
		c.replicas[id] = r
	}
	return c
}

// Sim returns the simulation driving this cluster.
func (c *Cluster) Sim() *wan.Sim { return c.sim }

// Replica returns the replica with the given id.
func (c *Cluster) Replica(id clock.ReplicaID) *Replica {
	r, ok := c.replicas[id]
	if !ok {
		panic(fmt.Sprintf("store: unknown replica %q", id))
	}
	return r
}

// Replicas returns the replica ids in creation order.
func (c *Cluster) Replicas() []clock.ReplicaID { return c.order }

// SetPartitioned blocks (or unblocks) the link between two replicas in
// both directions. Messages sent while partitioned are buffered and
// flushed when the partition heals — replication resumes, no update is
// lost (the availability model of weak consistency).
func (c *Cluster) SetPartitioned(a, b clock.ReplicaID, partitioned bool) {
	c.partitioned[[2]clock.ReplicaID{a, b}] = partitioned
	c.partitioned[[2]clock.ReplicaID{b, a}] = partitioned
	if !partitioned {
		for _, key := range [][2]clock.ReplicaID{{a, b}, {b, a}} {
			msgs := c.blocked[key]
			delete(c.blocked, key)
			for _, m := range msgs {
				c.send(key[0], key[1], m)
			}
		}
	}
}

// SetPaused freezes (or thaws) a replica's delivery pipeline — the
// crash/recovery fault hook. While paused, remote transactions still
// arrive but queue in the delivery buffer without applying, exactly as if
// the replica's application process had stalled; local commits are
// unaffected (they do not pass through the delivery queue). Unpausing
// drains the buffer in causal order.
func (c *Cluster) SetPaused(id clock.ReplicaID, paused bool) {
	r := c.Replica(id)
	r.pendMu.Lock()
	r.paused = paused
	r.pendMu.Unlock()
	if !paused {
		r.drain()
	}
}

// txnMsg is a committed transaction in flight between replicas.
type txnMsg struct {
	origin  clock.ReplicaID
	deps    clock.Vector // causal dependencies (origin's cut before commit)
	firstSq uint64       // origin sequence before this txn's updates
	lastSeq uint64       // origin sequence after this txn's updates
	updates []Update
}

func (c *Cluster) send(from, to clock.ReplicaID, m txnMsg) {
	if c.partitioned[[2]clock.ReplicaID{from, to}] {
		c.blocked[[2]clock.ReplicaID{from, to}] = append(c.blocked[[2]clock.ReplicaID{from, to}], m)
		return
	}
	atomic.AddUint64(&c.MessagesSent, 1)
	d := c.latency.OneWay(string(from), string(to), c.sim.Rand())
	dst := c.replicas[to]
	c.sim.After(d, func() { dst.receive(m) })
}

// Stabilize computes the stability horizon (the causal cut every replica
// has delivered) and lets every CRDT compact metadata below it. Call it
// periodically from the harness, or once after a run.
//
// Alongside the horizon it hands compaction the frontier — each origin's
// current commit count, which upper-bounds every event concurrent with a
// newly stable one. Remove-wins tombstones need it to decide when they
// can finally be discarded (crdt.FrontierCompacter): stability of the
// tombstone alone does not rule out a concurrent add still in flight.
func (c *Cluster) Stabilize() clock.Vector {
	atomic.AddUint64(&c.StabilityRuns, 1)
	frontier := clock.New()
	for _, id := range c.order {
		vc := c.replicas[id].Clock()
		c.stab.Ack(id, vc)
		frontier.Set(id, vc.Get(id))
	}
	h := c.stab.Horizon()
	for _, id := range c.order {
		c.replicas[id].CompactAll(h, frontier)
	}
	return h
}

// Update is one CRDT operation against a key.
type Update struct {
	Key string
	Op  crdt.Op
}

// numShards is the number of key-hashed shards each replica's object
// space is split into. A power of two; 32 comfortably exceeds the core
// counts this runs on, so independent transactions rarely collide.
const numShards = 32

// shard is one lock-striped slice of a replica's object space.
type shard struct {
	mu      sync.Mutex
	objects map[string]crdt.CRDT
}

// Replica is one data center's copy of the database. Inside the
// simulation a replica executes serially (the sim is single-threaded);
// under a real transport the same replica serves concurrent local
// transactions and concurrent remote appliers, synchronised by the
// sharded locking discipline described in the package comment.
type Replica struct {
	id      clock.ReplicaID
	cluster *Cluster
	shards  [numShards]shard

	// commitMu is the tag window (see the package comment). seq, the
	// event-tag counter, is guarded by it.
	commitMu sync.Mutex
	seq      uint64

	// clockMu guards vc; clockCond broadcasts every advance.
	clockMu   sync.Mutex
	clockCond *sync.Cond
	vc        clock.Vector // delivered cut; vc[id] == local commit sequence

	// pendMu guards the simulator-path causal delivery queue and the
	// pause flag. External transports do their own queueing and never
	// touch these (their pausing lives in the transport).
	pendMu  sync.Mutex
	pending []txnMsg
	paused  bool

	// invalid marks a replica instance that no longer represents its
	// site: the process crashed and a *different* Replica now carries
	// the identity (recovery builds a fresh instance from WAL +
	// snapshot), or the site was decommissioned. Sessions pinned to an
	// invalidated instance must not silently read its frozen,
	// possibly pre-snapshot state — Session.Begin fails with ErrStale.
	invalid atomic.Bool

	// Stats. TxnsExecuted is updated atomically (read-only transactions
	// commit outside every lock); the delivery counters are guarded by
	// clockMu. Read them from a quiescent replica.
	TxnsExecuted  uint64
	TxnsDelivered uint64
	TxnsDuplicate uint64
	QueuedMax     int
}

// Invalidate marks this replica instance as no longer representing its
// site (crash or decommission). Idempotent; never unset — a recovered
// site is a new Replica instance.
func (r *Replica) Invalidate() { r.invalid.Store(true) }

// Invalidated reports whether Invalidate was called.
func (r *Replica) Invalidated() bool { return r.invalid.Load() }

// EnsureSeq raises the replica's local event-tag counter to at least
// seq. Recovery calls it after replaying the write-ahead log: the log
// can hold own-origin commits past the snapshot's cut, and reusing
// their sequence numbers for new commits would make two different
// transactions share identity across the mesh.
func (r *Replica) EnsureSeq(seq uint64) {
	r.commitMu.Lock()
	defer r.commitMu.Unlock()
	if seq > r.seq {
		r.seq = seq
	}
}

// ID returns the replica identifier.
func (r *Replica) ID() clock.ReplicaID { return r.id }

// Clock returns a copy of the replica's delivered causal cut.
func (r *Replica) Clock() clock.Vector {
	r.clockMu.Lock()
	defer r.clockMu.Unlock()
	return r.vc.Clone()
}

// Covers reports whether the replica has delivered the given causal cut.
func (r *Replica) Covers(v clock.Vector) bool {
	r.clockMu.Lock()
	defer r.clockMu.Unlock()
	return v.LEq(r.vc)
}

// shardIndex maps a key to its shard (FNV-1a).
func shardIndex(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % numShards)
}

// Object returns the CRDT stored at key, creating it with mk when absent.
// The lookup is shard-locked; reads of the returned object are not — read
// through a transaction when the replica is live, and use Object directly
// only for seeding before traffic starts.
func (r *Replica) Object(key string, mk func() crdt.CRDT) crdt.CRDT {
	sh := &r.shards[shardIndex(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	obj, ok := sh.objects[key]
	if !ok {
		obj = mk()
		sh.objects[key] = obj
	}
	return obj
}

// Lookup returns the CRDT stored at key if it exists. The same read
// caveat as Object applies.
func (r *Replica) Lookup(key string) (crdt.CRDT, bool) {
	sh := &r.shards[shardIndex(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	obj, ok := sh.objects[key]
	return obj, ok
}

// Begin starts a highly available transaction at this replica. Concurrent
// transactions on one replica are allowed: object access takes per-shard
// locks (held to commit — two-phase locking), and update transactions
// additionally serialise their tagging window on the replica's commit
// lock. Always commit exactly once.
func (r *Replica) Begin() *Txn {
	r.clockMu.Lock()
	deps := r.vc.Clone()
	r.clockMu.Unlock()
	return &Txn{r: r, deps: deps}
}

// receive integrates a remote transaction on the simulator path,
// enforcing causal delivery: the transaction applies only when its
// dependencies are satisfied and the origin's updates are contiguous
// (per-origin FIFO).
func (r *Replica) receive(m txnMsg) {
	r.pendMu.Lock()
	r.pending = append(r.pending, m)
	if len(r.pending) > r.QueuedMax {
		r.QueuedMax = len(r.pending)
	}
	r.pendMu.Unlock()
	r.drain()
}

func (r *Replica) drain() {
	r.pendMu.Lock()
	defer r.pendMu.Unlock()
	if r.paused {
		return
	}
	progress := true
	for progress {
		progress = false
		for i, m := range r.pending {
			switch r.classify(m) {
			case msgDuplicate:
				// A duplicate whose first copy has since been applied
				// (at-least-once transports retry batches); it can never
				// become deliverable, so discard it. classify counted it.
				r.pending = append(r.pending[:i], r.pending[i+1:]...)
				progress = true
			case msgDeliverable:
				r.apply(m)
				r.pending = append(r.pending[:i], r.pending[i+1:]...)
				progress = true
			default:
				continue
			}
			break
		}
	}
}

// Message delivery states (see classify).
const (
	msgWaiting     = iota // FIFO gap or unmet dependency
	msgDeliverable        // next in FIFO order, dependencies satisfied
	msgDuplicate          // already applied; classify counted it
)

// classify checks one message against the delivered cut in a single
// clockMu section (the sim delivery loop re-scans its queue often, so
// this stays allocation-free). A duplicate is counted here.
func (r *Replica) classify(m txnMsg) int {
	r.clockMu.Lock()
	defer r.clockMu.Unlock()
	have := r.vc.Get(m.origin)
	switch {
	case m.lastSeq <= have:
		r.TxnsDuplicate++
		return msgDuplicate
	case m.firstSq == have && m.deps.LEq(r.vc):
		return msgDeliverable
	default:
		return msgWaiting
	}
}

// apply installs one remote transaction's effect group.
func (r *Replica) apply(m txnMsg) {
	r.applyRemote(m.origin, m.lastSeq, m.updates, m.deps)
}

// applyRemote applies one effect group atomically with respect to local
// transactions and other appliers: every shard the group touches is
// locked (in ascending order) before the first update applies, and —
// crucially — the delivered cut advances while those locks are still
// held. A local transaction that reads any of the group's effects can
// therefore only do so after the clock includes the group, so the
// delivered cut it merges at commit covers everything it read (the local
// commit path holds its shard locks across its own clock write for the
// same reason).
func (r *Replica) applyRemote(origin clock.ReplicaID, lastSeq uint64, updates []Update, deps clock.Vector) {
	var idxBuf [8]int
	idxs := idxBuf[:0]
	for _, u := range updates {
		idx := shardIndex(u.Key)
		seen := false
		for _, j := range idxs {
			if j == idx {
				seen = true
				break
			}
		}
		if !seen {
			idxs = append(idxs, idx)
		}
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		r.shards[i].mu.Lock()
	}
	for _, u := range updates {
		sh := &r.shards[shardIndex(u.Key)]
		obj, ok := sh.objects[u.Key]
		if !ok {
			// Object type is implied by the op; instantiate lazily through
			// the shared constructor registry.
			obj = crdt.NewForOp(u.Op)
			sh.objects[u.Key] = obj
		}
		op := u.Op
		if a, ok := op.(crdt.RWAddOp); ok {
			// Stamp the transaction's dependency cut onto remove-wins adds:
			// it re-establishes observations of tombstones the origin had
			// already compacted away but this replica still holds (e.g.
			// resurrected by crash-recovery WAL replay). See RWAddOp.Deps.
			a.Deps = deps
			op = a
		}
		obj.Apply(op)
	}
	r.clockMu.Lock()
	r.vc.Set(origin, lastSeq)
	r.TxnsDelivered++
	r.clockCond.Broadcast()
	r.clockMu.Unlock()
	for i := len(idxs) - 1; i >= 0; i-- {
		r.shards[idxs[i]].mu.Unlock()
	}
}

// ApplyExternal applies one transaction received from an external
// transport, blocking until its causal dependencies (and the per-origin
// FIFO predecessor) have been delivered. It returns true when the
// transaction applied, false for a duplicate or when giveUp reported
// true (giveUp is polled whenever the wait is woken — see WakeExternal).
//
// Callers must preserve per-origin FIFO: at most one goroutine may apply
// a given origin's transactions, in sequence order (package netrepl runs
// one applier goroutine per origin). Appliers for different origins run
// concurrently; their effect groups serialise per shard. Waiting cannot
// deadlock: a transaction's dependencies are ordered by happens-before,
// which is acyclic, and each origin's dependencies arrive on other
// origins' queues (see DESIGN.md).
func (r *Replica) ApplyExternal(w WireTxn, giveUp func() bool) bool {
	r.clockMu.Lock()
	for {
		have := r.vc.Get(w.Origin)
		if w.LastSeq <= have {
			r.TxnsDuplicate++
			r.clockMu.Unlock()
			return false
		}
		if have == w.FirstSeq && w.Deps.LEq(r.vc) {
			break
		}
		if giveUp != nil && giveUp() {
			r.clockMu.Unlock()
			return false
		}
		r.clockCond.Wait()
	}
	r.clockMu.Unlock()
	r.applyRemote(w.Origin, w.LastSeq, w.Updates, w.Deps)
	return true
}

// DeliveryStats returns a synchronized snapshot of the delivery counters
// (TxnsDelivered, TxnsDuplicate) — the race-free way to read them while
// appliers are live.
func (r *Replica) DeliveryStats() (delivered, duplicate uint64) {
	r.clockMu.Lock()
	defer r.clockMu.Unlock()
	return r.TxnsDelivered, r.TxnsDuplicate
}

// NoteDuplicate records a duplicate delivery detected by an external
// transport before it reached the replica (e.g. in a reorder buffer).
func (r *Replica) NoteDuplicate() {
	r.clockMu.Lock()
	r.TxnsDuplicate++
	r.clockMu.Unlock()
}

// dropIfDuplicate counts and reports a message already covered by the
// delivered cut, in one clockMu section.
func (r *Replica) dropIfDuplicate(origin clock.ReplicaID, lastSeq uint64) bool {
	r.clockMu.Lock()
	defer r.clockMu.Unlock()
	if lastSeq <= r.vc.Get(origin) {
		r.TxnsDuplicate++
		return true
	}
	return false
}

// WakeExternal wakes every ApplyExternal caller blocked on a causal
// dependency so it re-polls its giveUp hook — the shutdown path of an
// external transport.
func (r *Replica) WakeExternal() {
	r.clockMu.Lock()
	r.clockCond.Broadcast()
	r.clockMu.Unlock()
}

// CompactAll lets every CRDT at this replica discard metadata made
// redundant by the stability horizon; frontier carries the per-origin
// commit counts of the stability round (see Cluster.Stabilize). Each
// shard compacts under its own lock, so compaction is safe concurrent
// with live transactions and appliers. Exposed so replication backends
// without a shared Cluster — one store per node, as in netrepl — can run
// the same compaction from a gathered global view.
func (r *Replica) CompactAll(horizon, frontier clock.Vector) {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, obj := range sh.objects {
			if fc, ok := obj.(crdt.FrontierCompacter); ok {
				fc.CompactWithFrontier(horizon, frontier)
			} else {
				obj.Compact(horizon)
			}
		}
		sh.mu.Unlock()
	}
}

// PendingCount reports the size of the simulator-path causal delivery
// queue.
func (r *Replica) PendingCount() int {
	r.pendMu.Lock()
	defer r.pendMu.Unlock()
	return len(r.pending)
}
