package store

import (
	"bytes"
	"testing"
)

// FuzzWireRoundTrip hammers the frame decoder with arbitrary bytes. The
// invariants:
//
//   - DecodeFrame never panics, whatever the input (v0 gob, v1 gob, v2
//     binary, truncated, malformed, hostile counts);
//   - any input that decodes successfully as a v2 frame re-encodes to a
//     decodable frame carrying the same transactions (encode→decode
//     identity, checked bytewise through the deterministic encoder).
//
// The seed corpus covers all three frame versions plus edge frames, so
// the fuzzer starts from deep inside the format rather than fumbling at
// the magic bytes.
func FuzzWireRoundTrip(f *testing.F) {
	rich := richTxns()
	if v2, err := EncodeBatchV2(rich); err == nil {
		f.Add(v2)
	}
	if v1, err := EncodeBatch(rich); err == nil {
		f.Add(v1)
	}
	if v0, err := EncodeTxn(sampleTxn("legacy", 2, 3)); err == nil {
		f.Add(v0)
	}
	if empty, err := EncodeBatchV2(nil); err == nil {
		f.Add(empty)
	}
	f.Add([]byte("IPAB\x02"))
	f.Add([]byte("IPAB\x02\x01"))
	f.Add([]byte("IPAB\x01junk"))
	f.Add([]byte{0xFF, 0x00, 0x49})
	// Torn log tails: the WAL uses frames as record payloads, and a crash
	// mid-write hands replay a prefix of a valid frame (the CRC check
	// catches most, but DecodeFrame is the last line and must reject every
	// truncation cleanly — no panic, no short read past the buffer).
	if v2, err := EncodeBatchV2(rich); err == nil {
		for _, cut := range []int{1, len(v2) / 4, len(v2) / 2, len(v2) - 7, len(v2) - 1} {
			if cut > 0 && cut < len(v2) {
				f.Add(v2[:cut])
			}
		}
		// A torn tail can also splice two writes: an intact frame with the
		// head of the next one appended.
		f.Add(append(append([]byte(nil), v2...), v2[:len(v2)/3]...))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		txns, err := DecodeFrame(data)
		if err != nil {
			return // malformed input must error, and it did — done
		}
		// Whatever decoded must survive a v2 round trip unchanged.
		v2, err := EncodeBatchV2(txns)
		if err != nil {
			// Only reachable if a decoded op lost its codec — impossible
			// for frames built from registered types.
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		back, err := DecodeFrame(v2)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		again, err := EncodeBatchV2(back)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(v2, again) {
			t.Fatal("v2 encode→decode→encode not a fixed point")
		}
	})
}
