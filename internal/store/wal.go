package store

// The write-ahead op log. Records are the replication wire frames
// themselves (wire.go): a frame is already a deterministic, versioned,
// self-describing batch of transactions, so the log borrows the codec
// wholesale and adds only what a file needs that a socket does not — a
// length prefix and a CRC per record, segmentation, and fsync.
//
// Durability contract (enforced by the netrepl layer, see DESIGN.md):
//
//   - every transaction is appended *before* it is applied or
//     acknowledged, so the durable cut always covers the applied cut and
//     therefore the stability horizon;
//   - an append is not durable until WaitSynced returns for its sequence
//     number — appends buffer in memory and a group-commit leader flushes
//     and fsyncs for every waiter of the same window;
//   - segments may be deleted only below the pointwise minimum of the
//     stability horizon and the latest snapshot's vector (TruncateBelow
//     trusts its caller on this): below the horizon every replica has the
//     record, below the snapshot recovery does not need it.
//
// A crash can tear the tail of the active segment mid-record. Recovery
// treats the first unreadable record (short header, bad CRC, frame that
// fails DecodeFrame) as the end of the log: everything before it is
// replayed, the file is truncated there, and the torn bytes are ignored.
// Nothing past a torn record was ever acknowledged — WaitSynced had not
// returned for it — so dropping it loses nothing the node promised.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"ipa/internal/clock"
)

const (
	// walRecordHeader is the per-record overhead: 4-byte big-endian
	// payload length + 4-byte IEEE CRC of the payload.
	walRecordHeader = 8
	// maxWALRecord bounds a record's claimed length during replay — a
	// corrupt header must not provoke a multi-gigabyte allocation. Kept
	// well above any frame the transport can produce.
	maxWALRecord = 256 << 20
	// defaultSegmentSize rotates segments at this many bytes so
	// truncation has units to delete.
	defaultSegmentSize = 8 << 20
)

// walSegment is one on-disk log file. Only the newest segment is open
// for writing; sealed segments keep just the bookkeeping truncation
// needs.
type walSegment struct {
	index int
	path  string
	size  int64
	// maxByOrigin is the highest transaction sequence this segment holds
	// per origin — the fact TruncateBelow consults. Rebuilt from the
	// record scan on open.
	maxByOrigin map[clock.ReplicaID]uint64
}

// WAL is a per-replica write-ahead log of replication frames. Append is
// cheap (an in-memory buffer under a mutex); WaitSynced provides group
// commit: the first waiter becomes the flush leader for everything
// appended so far, later waiters ride the same fsync.
type WAL struct {
	dir     string
	segSize int64

	mu        sync.Mutex
	cond      *sync.Cond // broadcast when syncedSeq advances or err sets
	seg       *walSegment
	file      *os.File
	sealed    []*walSegment
	buf       []byte // appended records not yet handed to the file
	appendSeq uint64 // last sequence number assigned by Append
	syncedSeq uint64 // last sequence number known durable
	syncing   bool   // a flush leader is running
	err       error  // sticky I/O error; the WAL is dead once set

	appends   uint64
	syncs     uint64
	bytes     uint64
	truncated uint64
}

// WALStats is a point-in-time snapshot of the log's counters.
type WALStats struct {
	Appends   uint64 // records appended
	Syncs     uint64 // fsync batches (group commits)
	Bytes     uint64 // payload + header bytes appended
	Segments  int    // segments currently on disk
	Truncated uint64 // segments deleted by truncation
}

// OpenWAL opens (creating if absent) the log in dir and replays every
// intact record, oldest first, through replay before returning. A torn or
// corrupt record ends the replay: the log is truncated at the last intact
// record and any later segments are discarded. The returned WAL is open
// for appending.
func OpenWAL(dir string, replay func(frame []byte, txns []WireTxn) error) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	w := &WAL{dir: dir, segSize: defaultSegmentSize}
	w.cond = sync.NewCond(&w.mu)

	indexes, err := walSegmentIndexes(dir)
	if err != nil {
		return nil, err
	}
	valid := true
	for _, idx := range indexes {
		seg := &walSegment{index: idx, path: walSegmentPath(dir, idx), maxByOrigin: map[clock.ReplicaID]uint64{}}
		if !valid {
			// A torn record in an earlier segment ends the log; later
			// segments hold records that would replay out of order, so
			// they go with it.
			log.Printf("wal: discarding segment %s beyond a torn record", seg.path)
			if err := os.Remove(seg.path); err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			continue
		}
		ok, err := w.scanSegment(seg, replay)
		if err != nil {
			return nil, err
		}
		valid = ok
		w.sealed = append(w.sealed, seg)
	}

	// Appends go to a fresh segment past everything scanned; sealed
	// segments are never reopened for writing.
	next := 0
	if n := len(w.sealed); n > 0 {
		next = w.sealed[n-1].index + 1
	}
	if err := w.openSegment(next); err != nil {
		return nil, err
	}
	return w, nil
}

func walSegmentPath(dir string, idx int) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", idx))
}

func walSegmentIndexes(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var idxs []int
	for _, e := range entries {
		var idx int
		if _, err := fmt.Sscanf(e.Name(), "wal-%d.log", &idx); err == nil {
			idxs = append(idxs, idx)
		}
	}
	sort.Ints(idxs)
	return idxs, nil
}

// scanSegment replays one segment's records. It reports false when it hit
// a torn record (after truncating the file there); an I/O error is
// returned as-is.
func (w *WAL) scanSegment(seg *walSegment, replay func([]byte, []WireTxn) error) (bool, error) {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return false, fmt.Errorf("wal: %w", err)
	}
	off := 0
	for {
		if off == len(data) {
			seg.size = int64(off)
			return true, nil
		}
		rest := data[off:]
		if len(rest) < walRecordHeader {
			break
		}
		n := binary.BigEndian.Uint32(rest)
		if n > maxWALRecord || int(n) > len(rest)-walRecordHeader {
			break
		}
		payload := rest[walRecordHeader : walRecordHeader+int(n)]
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(rest[4:]) {
			break
		}
		txns, err := DecodeFrame(payload)
		if err != nil {
			break
		}
		if replay != nil {
			if err := replay(payload, txns); err != nil {
				return false, err
			}
		}
		for i := range txns {
			if txns[i].LastSeq > seg.maxByOrigin[txns[i].Origin] {
				seg.maxByOrigin[txns[i].Origin] = txns[i].LastSeq
			}
		}
		w.appends++
		w.bytes += uint64(walRecordHeader + int(n))
		off += walRecordHeader + int(n)
	}
	// Torn tail: keep the intact prefix, drop the rest.
	log.Printf("wal: truncating torn tail of %s at byte %d (of %d)", seg.path, off, len(data))
	if err := os.Truncate(seg.path, int64(off)); err != nil {
		return false, fmt.Errorf("wal: %w", err)
	}
	seg.size = int64(off)
	return false, nil
}

func (w *WAL) openSegment(idx int) error {
	path := walSegmentPath(w.dir, idx)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	w.seg = &walSegment{index: idx, path: path, maxByOrigin: map[clock.ReplicaID]uint64{}}
	w.file = f
	return nil
}

// Append buffers one frame as a log record and returns its log sequence
// number for WaitSynced. The frame must be a valid replication frame
// (DecodeFrame must accept it on replay); txns are its decoded
// transactions, used for truncation bookkeeping.
func (w *WAL) Append(frame []byte, txns []WireTxn) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if w.seg.size >= w.segSize && !w.syncing && len(w.buf) == 0 {
		if err := w.rotateLocked(); err != nil {
			w.fail(err)
			return 0, err
		}
	}
	var hdr [walRecordHeader]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(frame)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(frame))
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, frame...)
	w.seg.size += int64(walRecordHeader + len(frame))
	for i := range txns {
		if txns[i].LastSeq > w.seg.maxByOrigin[txns[i].Origin] {
			w.seg.maxByOrigin[txns[i].Origin] = txns[i].LastSeq
		}
	}
	w.appendSeq++
	w.appends++
	w.bytes += uint64(walRecordHeader + len(frame))
	return w.appendSeq, nil
}

// rotateLocked seals the active segment and opens the next. Called with
// mu held, no flush in flight, and the buffer empty, so the file holds
// everything the segment will ever hold.
func (w *WAL) rotateLocked() error {
	if err := w.file.Sync(); err != nil {
		return err
	}
	if err := w.file.Close(); err != nil {
		return err
	}
	w.sealed = append(w.sealed, w.seg)
	return w.openSegment(w.seg.index + 1)
}

// fail records a sticky I/O error and wakes every waiter; with mu held.
func (w *WAL) fail(err error) {
	if w.err == nil {
		w.err = err
	}
	w.cond.Broadcast()
}

// WaitSynced blocks until the record Append returned seq for is durable
// (flushed and fsynced). The first caller to arrive for an unflushed
// window becomes the leader and syncs on behalf of every concurrent
// waiter — group commit.
func (w *WAL) WaitSynced(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.err != nil {
			return w.err
		}
		if w.syncedSeq >= seq {
			return nil
		}
		if w.syncing {
			w.cond.Wait()
			continue
		}
		w.syncing = true
		target := w.appendSeq
		data := w.buf
		w.buf = nil
		file := w.file
		w.mu.Unlock()
		var err error
		if len(data) > 0 {
			_, err = file.Write(data)
		}
		if err == nil {
			err = file.Sync()
		}
		w.mu.Lock()
		w.syncing = false
		w.syncs++
		if err != nil {
			w.fail(err)
			return err
		}
		if target > w.syncedSeq {
			w.syncedSeq = target
		}
		w.cond.Broadcast()
	}
}

// Sync makes everything appended so far durable.
func (w *WAL) Sync() error {
	w.mu.Lock()
	seq := w.appendSeq
	w.mu.Unlock()
	return w.WaitSynced(seq)
}

// SetSegmentSize overrides the rotation threshold (default 8 MiB).
// Smaller segments give truncation finer units to delete — the knob for
// deployments (and benchmarks) where bounding replay matters more than
// file count. Safe while the log is in use; the next flush that crosses
// the new threshold rotates.
func (w *WAL) SetSegmentSize(n int64) {
	if n <= 0 {
		return
	}
	w.mu.Lock()
	w.segSize = n
	w.mu.Unlock()
}

// TruncateBelow deletes sealed segments every record of which lies at or
// below cut for its origin. The caller must guarantee cut is covered both
// by the stability horizon (every replica holds the records) and by a
// durable snapshot (recovery will not need them); see the package
// comment.
func (w *WAL) TruncateBelow(cut clock.Vector) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	kept := make([]*walSegment, 0, len(w.sealed))
	var firstErr error
	for _, seg := range w.sealed {
		deletable := firstErr == nil
		for origin, max := range seg.maxByOrigin {
			if max > cut.Get(origin) {
				deletable = false
				break
			}
		}
		if !deletable {
			kept = append(kept, seg)
			continue
		}
		if err := os.Remove(seg.path); err != nil {
			kept = append(kept, seg)
			firstErr = fmt.Errorf("wal: %w", err)
			continue
		}
		w.truncated++
	}
	w.sealed = kept
	return firstErr
}

// RecordsAbove returns the decoded transactions of every logged record
// not covered by cut — the tail a node serves to a bootstrapping peer.
// All origins are included: records whose origin has left the mesh
// survive only in the logs of the nodes that received them. Anything
// truncated was below the stability horizon, hence inside every live
// member's state (and any donor snapshot). It flushes first so the scan
// sees all appends.
func (w *WAL) RecordsAbove(cut clock.Vector) ([]WireTxn, error) {
	if err := w.Sync(); err != nil {
		return nil, err
	}
	w.mu.Lock()
	segs := make([]*walSegment, 0, len(w.sealed)+1)
	segs = append(segs, w.sealed...)
	segs = append(segs, w.seg)
	w.mu.Unlock()
	var out []WireTxn
	for _, seg := range segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		off := 0
		for off+walRecordHeader <= len(data) {
			n := int(binary.BigEndian.Uint32(data[off:]))
			if n > len(data)-off-walRecordHeader {
				break
			}
			payload := data[off+walRecordHeader : off+walRecordHeader+n]
			txns, err := DecodeFrame(payload)
			if err != nil {
				break
			}
			for i := range txns {
				if txns[i].LastSeq > cut.Get(txns[i].Origin) {
					out = append(out, txns[i])
				}
			}
			off += walRecordHeader + n
		}
	}
	return out, nil
}

// Stats returns the log's counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WALStats{
		Appends:   w.appends,
		Syncs:     w.syncs,
		Bytes:     w.bytes,
		Segments:  len(w.sealed) + 1,
		Truncated: w.truncated,
	}
}

// Abandon closes the log WITHOUT flushing the append buffer — the
// kill -9 path. Records appended but never synced are lost, which is
// exactly the guarantee: nothing was acknowledged (to a client or a
// peer) before its WaitSynced returned, so dropping the unsynced tail
// loses no acked operation.
func (w *WAL) Abandon() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.file == nil {
		return nil
	}
	err := w.file.Close()
	w.file = nil
	w.buf = nil
	w.fail(fmt.Errorf("wal: abandoned"))
	return err
}

// Close flushes, fsyncs, and closes the log.
func (w *WAL) Close() error {
	syncErr := w.Sync()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.file == nil {
		return syncErr
	}
	err := w.file.Close()
	w.file = nil
	w.fail(fmt.Errorf("wal: closed"))
	if syncErr != nil {
		return syncErr
	}
	return err
}
