package store

import (
	"fmt"

	"ipa/internal/clock"
)

// Session provides causal session guarantees for a client that may attach
// to different replicas over its lifetime — SwiftCloud's client-side
// causal consistency ("write fast, read in the past" [48]). The session
// tracks the causal cut it has observed; attaching to a replica that has
// not yet delivered that cut fails with ErrStale instead of showing the
// client older state, which preserves:
//
//   - read your writes: the cut includes the client's own commits;
//   - monotonic reads: the cut only grows;
//   - writes follow reads / monotonic writes: transactions started
//     through the session depend on everything the session has seen.
type Session struct {
	deps clock.Vector
}

// NewSession starts a session with an empty causal past.
func NewSession() *Session { return &Session{deps: clock.New()} }

// ErrStale reports that a replica has not yet delivered the session's
// causal past; the client should retry, wait, or attach elsewhere.
type ErrStale struct {
	Replica clock.ReplicaID
	Need    clock.Vector
	Have    clock.Vector
}

func (e *ErrStale) Error() string {
	return fmt.Sprintf("store: replica %s is stale for this session: needs %s, has %s",
		e.Replica, e.Need, e.Have)
}

// CanUse reports whether the replica covers the session's causal past.
func (s *Session) CanUse(r *Replica) bool { return r.Covers(s.deps) }

// Begin starts a transaction at the replica, provided it covers the
// session's past. The session advances in two steps: to the
// transaction's snapshot immediately, and — because on a concurrent
// backend reads inside the transaction can observe remote effects
// applied after the snapshot — to the replica's delivered cut when the
// transaction commits (an OnFinish hook; the post-commit cut is a
// superset of everything the transaction read or wrote). Sessions are
// single-client state: commit the transaction on the goroutine that owns
// the session.
func (s *Session) Begin(r *Replica) (*Txn, error) {
	if r.Invalidated() {
		// The instance no longer represents its site: the process
		// crashed and recovered into a fresh Replica, or the site was
		// decommissioned. Its state is frozen at (or, after a recovery
		// from an older snapshot, behind) the moment it died — reads
		// through it would silently violate monotonicity against the
		// recovered site. Fail like any other staleness; the client
		// re-resolves the site and re-pins.
		return nil, &ErrStale{Replica: r.id, Need: s.deps.Clone(), Have: r.Clock()}
	}
	tx := r.Begin()
	if !s.deps.LEq(tx.deps) {
		return nil, &ErrStale{Replica: r.id, Need: s.deps.Clone(), Have: tx.deps.Clone()}
	}
	s.deps.Merge(tx.deps)
	tx.OnFinish(func() { s.deps.Merge(r.Clock()) })
	return tx, nil
}

// Observe folds a committed transaction's effects into the session (read
// your writes across replicas). Call it after Commit. It merges the
// replica's delivered cut, not the transaction's Begin snapshot: on a
// concurrent backend the transaction's reads see everything applied
// while it was open, and the session cut must cover all of it (monotonic
// reads) — the post-commit cut is a superset of every such read and of
// the transaction's own writes.
func (s *Session) Observe(tx *Txn) {
	s.deps.Merge(tx.r.Clock())
	if tx.lastSeq > s.deps.Get(tx.r.id) {
		s.deps.Set(tx.r.id, tx.lastSeq)
	}
}

// Cut returns a copy of the session's causal past.
func (s *Session) Cut() clock.Vector { return s.deps.Clone() }
