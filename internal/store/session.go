package store

import (
	"fmt"

	"ipa/internal/clock"
)

// Session provides causal session guarantees for a client that may attach
// to different replicas over its lifetime — SwiftCloud's client-side
// causal consistency ("write fast, read in the past" [48]). The session
// tracks the causal cut it has observed; attaching to a replica that has
// not yet delivered that cut fails with ErrStale instead of showing the
// client older state, which preserves:
//
//   - read your writes: the cut includes the client's own commits;
//   - monotonic reads: the cut only grows;
//   - writes follow reads / monotonic writes: transactions started
//     through the session depend on everything the session has seen.
type Session struct {
	deps clock.Vector
}

// NewSession starts a session with an empty causal past.
func NewSession() *Session { return &Session{deps: clock.New()} }

// ErrStale reports that a replica has not yet delivered the session's
// causal past; the client should retry, wait, or attach elsewhere.
type ErrStale struct {
	Replica clock.ReplicaID
	Need    clock.Vector
	Have    clock.Vector
}

func (e *ErrStale) Error() string {
	return fmt.Sprintf("store: replica %s is stale for this session: needs %s, has %s",
		e.Replica, e.Need, e.Have)
}

// CanUse reports whether the replica covers the session's causal past.
func (s *Session) CanUse(r *Replica) bool { return s.deps.LEq(r.vc) }

// Begin starts a transaction at the replica, provided it covers the
// session's past. On success the session advances to the replica's cut
// (monotonic reads: everything read now is remembered).
func (s *Session) Begin(r *Replica) (*Txn, error) {
	if !s.CanUse(r) {
		return nil, &ErrStale{Replica: r.id, Need: s.deps.Clone(), Have: r.Clock()}
	}
	tx := r.Begin()
	s.deps.Merge(r.vc)
	return tx, nil
}

// Observe folds a committed transaction's effects into the session (read
// your writes across replicas). Call it after Commit.
func (s *Session) Observe(tx *Txn) {
	s.deps.Merge(tx.r.vc)
}

// Cut returns a copy of the session's causal past.
func (s *Session) Cut() clock.Vector { return s.deps.Clone() }
