package store

// Snapshots: a point-in-time image of one replica's full state — every
// object's materialised CRDT state (crdt/state.go codecs) plus the
// replica's version vector. A snapshot plus the WAL suffix above it
// reproduces the replica exactly, which is what makes WAL truncation
// sound: segments below min(stability horizon, snapshot vector) are
// covered twice over.
//
// The capture runs under the full locking discipline (commit lock, every
// shard ascending, clock lock), so the image is a consistent cut: it
// contains exactly the transactions counted by its vector. Files are
// written to a temp name, fsynced, and renamed — a crash mid-write leaves
// the previous snapshot intact, and the loader ignores anything whose
// checksum does not match.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"ipa/internal/clock"
	"ipa/internal/crdt"
)

const (
	snapshotMagic   = "IPAS"
	snapshotVersion = 1
	// SnapshotFile is the snapshot's name inside a replica's data
	// directory.
	SnapshotFile = "snapshot.bin"
)

// Snapshot is a decoded replica image.
type Snapshot struct {
	Replica clock.ReplicaID
	VC      clock.Vector
	Objects map[string]crdt.CRDT
}

// CaptureSnapshot encodes a consistent image of the replica. It excludes
// every in-flight transaction by holding the commit lock and all shard
// locks for the duration, so it pauses the replica — callers amortise it
// (periodic snapshots, not per-commit).
func (r *Replica) CaptureSnapshot() ([]byte, clock.Vector, error) {
	r.commitMu.Lock()
	defer r.commitMu.Unlock()
	for i := range r.shards {
		r.shards[i].mu.Lock()
		defer r.shards[i].mu.Unlock()
	}
	r.clockMu.Lock()
	vc := r.vc.Clone()
	r.clockMu.Unlock()

	keys := make([]string, 0, 256)
	for i := range r.shards {
		for k := range r.shards[i].objects {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	body := crdt.AppendVectorWire(nil, vc)
	body = crdt.AppendWireString(body, string(r.id))
	body = binary.AppendUvarint(body, uint64(len(keys)))
	for _, k := range keys {
		obj := r.shards[shardIndex(k)].objects[k]
		body = crdt.AppendWireString(body, k)
		var err error
		if body, err = crdt.AppendCRDTState(body, obj); err != nil {
			return nil, nil, fmt.Errorf("snapshot: %s: %w", k, err)
		}
	}

	out := make([]byte, 0, len(body)+9)
	out = append(out, snapshotMagic...)
	out = append(out, snapshotVersion)
	out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
	out = append(out, body...)
	return out, vc, nil
}

// DecodeSnapshot parses a snapshot image. Corruption of any kind is an
// error; the caller falls back to an empty state plus full WAL replay.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < 9 || string(data[:4]) != snapshotMagic {
		return nil, fmt.Errorf("snapshot: bad magic")
	}
	if data[4] != snapshotVersion {
		return nil, fmt.Errorf("snapshot: unknown version %d", data[4])
	}
	body := data[9:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(data[5:9]) {
		return nil, fmt.Errorf("snapshot: checksum mismatch")
	}
	rd := crdt.NewWireReader(body)
	vc, err := crdt.DecodeVectorWire(&rd)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	id, err := rd.ReadString()
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	n, err := rd.ReadCount()
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	s := &Snapshot{Replica: clock.ReplicaID(id), VC: vc, Objects: make(map[string]crdt.CRDT, n)}
	if s.VC == nil {
		s.VC = clock.New()
	}
	for i := 0; i < n; i++ {
		k, err := rd.ReadString()
		if err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
		obj, err := crdt.DecodeCRDTState(&rd)
		if err != nil {
			return nil, fmt.Errorf("snapshot: object %s: %w", k, err)
		}
		s.Objects[k] = obj
	}
	if rd.Len() != 0 {
		return nil, fmt.Errorf("snapshot: %d trailing bytes", rd.Len())
	}
	return s, nil
}

// RestoreSnapshot installs a decoded image into a fresh replica: objects,
// version vector, and the local event-tag counter. It must run before the
// replica serves any traffic.
func (r *Replica) RestoreSnapshot(s *Snapshot) {
	r.commitMu.Lock()
	defer r.commitMu.Unlock()
	for k, obj := range s.Objects {
		sh := &r.shards[shardIndex(k)]
		sh.mu.Lock()
		sh.objects[k] = obj
		sh.mu.Unlock()
	}
	r.clockMu.Lock()
	r.vc.Merge(s.VC)
	r.clockMu.Unlock()
	if seq := s.VC.Get(r.id); seq > r.seq {
		r.seq = seq
	}
}

// WriteSnapshotFile atomically replaces the snapshot in dir.
func WriteSnapshotFile(dir string, data []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	tmp := filepath.Join(dir, SnapshotFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, SnapshotFile)); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// ReadSnapshotFile loads and decodes the snapshot in dir; ok is false
// when none exists or the file fails validation (recovery then replays
// the full WAL).
func ReadSnapshotFile(dir string) (*Snapshot, bool) {
	data, err := os.ReadFile(filepath.Join(dir, SnapshotFile))
	if err != nil {
		return nil, false
	}
	s, err := DecodeSnapshot(data)
	if err != nil {
		return nil, false
	}
	return s, true
}
