package store

import (
	"testing"

	"ipa/internal/clock"
	"ipa/internal/crdt"
	"ipa/internal/wan"
)

func newTestCluster(seed int64) (*wan.Sim, *Cluster) {
	sim := wan.NewSim(seed)
	lat := wan.PaperTopology()
	ids := []clock.ReplicaID{wan.USEast, wan.USWest, wan.EUWest}
	return sim, NewCluster(sim, lat, ids)
}

func TestCommitReplicatesEverywhere(t *testing.T) {
	sim, c := newTestCluster(1)
	east := c.Replica(wan.USEast)

	tx := east.Begin()
	AWSetAt(tx, "players").Add("alice", "profile")
	tx.Commit()
	if c.TxnsCommitted != 1 {
		t.Fatal("commit not counted")
	}

	// Before the WAN delay, remote replicas have not seen it.
	west := c.Replica(wan.USWest)
	wtx := west.Begin()
	if AWSetAt(wtx, "players").Contains("alice") {
		t.Fatal("update visible remotely before replication delay")
	}
	wtx.Commit()

	sim.Run()
	for _, id := range c.Replicas() {
		tx := c.Replica(id).Begin()
		set := AWSetAt(tx, "players")
		if !set.Contains("alice") {
			t.Fatalf("replica %s missing update", id)
		}
		if p, _ := set.Payload("alice"); p != "profile" {
			t.Fatalf("replica %s payload = %q", id, p)
		}
		tx.Commit()
	}
}

func TestTransactionAtomicity(t *testing.T) {
	sim, c := newTestCluster(2)
	east := c.Replica(wan.USEast)

	tx := east.Begin()
	AWSetAt(tx, "players").Add("p1", "")
	AWSetAt(tx, "tournaments").Add("t1", "")
	AWSetAt(tx, "enrolled").Add(crdt.JoinTuple("p1", "t1"), "")
	tx.Commit()

	sim.Run()
	for _, id := range c.Replicas() {
		r := c.Replica(id)
		tx := r.Begin()
		a := AWSetAt(tx, "players").Contains("p1")
		b := AWSetAt(tx, "tournaments").Contains("t1")
		cc := AWSetAt(tx, "enrolled").Contains(crdt.JoinTuple("p1", "t1"))
		if !a || !b || !cc {
			t.Fatalf("replica %s saw partial transaction: %v %v %v", id, a, b, cc)
		}
		tx.Commit()
	}
}

func TestCausalDelivery(t *testing.T) {
	sim, c := newTestCluster(3)
	east := c.Replica(wan.USEast)
	west := c.Replica(wan.USWest)

	// east writes A; west reads A (after replication) then writes B that
	// causally depends on A. eu-west must never apply B before A.
	tx := east.Begin()
	AWSetAt(tx, "s").Add("A", "")
	tx.Commit()
	sim.RunUntil(wan.Ms(100)) // A reached west

	wtx := west.Begin()
	if !AWSetAt(wtx, "s").Contains("A") {
		t.Fatal("west should have A by now")
	}
	AWSetAt(wtx, "s").Add("B", "")
	wtx.Commit()

	// B travels west->eu (80ms one-way) arriving ~180; A went east->eu
	// (40ms) arriving ~40. Delivery order is fine here; the causal queue
	// is exercised by the partition test below. Still: eventually both.
	sim.Run()
	eu := c.Replica(wan.EUWest)
	tx2 := eu.Begin()
	if !AWSetAt(tx2, "s").Contains("A") || !AWSetAt(tx2, "s").Contains("B") {
		t.Fatal("eu-west missing updates")
	}
	tx2.Commit()
}

func TestCausalQueueHoldsDependentTxn(t *testing.T) {
	sim, c := newTestCluster(4)
	east := c.Replica(wan.USEast)
	west := c.Replica(wan.USWest)
	eu := c.Replica(wan.EUWest)

	// Partition east<->eu so A (from east) cannot reach eu.
	c.SetPartitioned(wan.USEast, wan.EUWest, true)

	tx := east.Begin()
	AWSetAt(tx, "s").Add("A", "")
	tx.Commit()
	sim.RunUntil(wan.Ms(60)) // A reached west only

	wtx := west.Begin()
	if !AWSetAt(wtx, "s").Contains("A") {
		t.Fatal("west should have A")
	}
	AWSetAt(wtx, "s").Add("B", "")
	wtx.Commit()

	// B arrives at eu (~80ms) but depends on A, which is partitioned away:
	// it must wait in the causal queue.
	sim.RunUntil(wan.Ms(400))
	etx := eu.Begin()
	if AWSetAt(etx, "s").Contains("B") {
		t.Fatal("B delivered before its dependency A")
	}
	etx.Commit()
	if eu.PendingCount() == 0 {
		t.Fatal("B should be queued at eu")
	}

	// Heal: A flushes, then B applies.
	c.SetPartitioned(wan.USEast, wan.EUWest, false)
	sim.Run()
	ftx := eu.Begin()
	if !AWSetAt(ftx, "s").Contains("A") || !AWSetAt(ftx, "s").Contains("B") {
		t.Fatal("updates lost after heal")
	}
	ftx.Commit()
	if eu.PendingCount() != 0 {
		t.Fatal("queue should be drained")
	}
}

func TestConcurrentAddWins(t *testing.T) {
	sim, c := newTestCluster(5)
	east := c.Replica(wan.USEast)
	west := c.Replica(wan.USWest)

	// Seed: tournament exists everywhere.
	tx := east.Begin()
	AWSetAt(tx, "tournaments").Add("t1", "info")
	tx.Commit()
	sim.Run()

	// Concurrent: east removes t1; west touches it (IPA's enroll repair).
	rtx := east.Begin()
	AWSetAt(rtx, "tournaments").Remove("t1")
	rtx.Commit()
	wtx := west.Begin()
	AWSetAt(wtx, "tournaments").Touch("t1")
	wtx.Commit()
	sim.Run()

	for _, id := range c.Replicas() {
		tx := c.Replica(id).Begin()
		set := AWSetAt(tx, "tournaments")
		if !set.Contains("t1") {
			t.Fatalf("replica %s: touch must win over concurrent remove", id)
		}
		if p, _ := set.Payload("t1"); p != "info" {
			t.Fatalf("replica %s: payload lost: %q", id, p)
		}
		tx.Commit()
	}
}

func TestConvergenceAcrossReplicas(t *testing.T) {
	sim, c := newTestCluster(6)
	// Random-ish workload from all three replicas, then settle.
	for i := 0; i < 30; i++ {
		id := c.Replicas()[i%3]
		tx := c.Replica(id).Begin()
		set := RWSetAt(tx, "rw")
		if i%5 == 4 {
			set.Remove("x")
		} else {
			set.Add("x", "")
		}
		CounterAt(tx, "cnt").Add(int64(i))
		tx.Commit()
		sim.RunUntil(sim.Now() + wan.Ms(7))
	}
	sim.Run()
	var want []string
	var wantCnt int64
	for i, id := range c.Replicas() {
		tx := c.Replica(id).Begin()
		got := RWSetAt(tx, "rw").Elems()
		cnt := CounterAt(tx, "cnt").Value()
		tx.Commit()
		if i == 0 {
			want, wantCnt = got, cnt
			continue
		}
		if len(got) != len(want) || cnt != wantCnt {
			t.Fatalf("replica %s diverged: %v/%d vs %v/%d", id, got, cnt, want, wantCnt)
		}
	}
}

func TestStabilizeCompacts(t *testing.T) {
	sim, c := newTestCluster(7)
	east := c.Replica(wan.USEast)
	tx := east.Begin()
	RWSetAt(tx, "rw").Add("x", "")
	tx.Commit()
	tx2 := east.Begin()
	RWSetAt(tx2, "rw").Remove("x")
	tx2.Commit()
	sim.Run()
	h := c.Stabilize()
	if h.Get(wan.USEast) == 0 {
		t.Fatalf("horizon should cover east's events: %v", h)
	}
	// After compaction the tombstones are gone but absence is preserved.
	tx3 := east.Begin()
	if RWSetAt(tx3, "rw").Contains("x") {
		t.Fatal("x should stay removed after compaction")
	}
	tx3.Commit()
}

func TestLWWRegisterThroughStore(t *testing.T) {
	sim, c := newTestCluster(8)
	east := c.Replica(wan.USEast)
	west := c.Replica(wan.USWest)
	tx := east.Begin()
	RegisterAt(tx, "name").Set("v-east")
	tx.Commit()
	tx2 := west.Begin()
	RegisterAt(tx2, "name").Set("v-west")
	tx2.Commit()
	sim.Run()
	var vals []string
	for _, id := range c.Replicas() {
		tx := c.Replica(id).Begin()
		v, ok := RegisterAt(tx, "name").Value()
		tx.Commit()
		if !ok {
			t.Fatalf("replica %s: register unset", id)
		}
		vals = append(vals, v)
	}
	if vals[0] != vals[1] || vals[1] != vals[2] {
		t.Fatalf("LWW diverged: %v", vals)
	}
}

func TestCompSetThroughStore(t *testing.T) {
	sim, c := newTestCluster(9)
	for _, id := range c.Replicas() {
		SeedCompSet(c.Replica(id), "event1", 1)
	}
	// Two replicas concurrently sell the last ticket.
	tx := c.Replica(wan.USEast).Begin()
	CompSetAt(tx, "event1").Add("buyer-east", "")
	tx.Commit()
	tx2 := c.Replica(wan.USWest).Begin()
	CompSetAt(tx2, "event1").Add("buyer-west", "")
	tx2.Commit()
	sim.Run()

	// Every replica observes the overshoot; reading compensates.
	rtx := c.Replica(wan.EUWest).Begin()
	ref := CompSetAt(rtx, "event1")
	if !ref.Violating() {
		t.Fatal("oversell should be observable")
	}
	elems := ref.Read()
	rtx.Commit()
	if len(elems) != 1 {
		t.Fatalf("compensated view = %v", elems)
	}
	sim.Run()
	// The compensation replicated: all replicas converge to one ticket.
	for _, id := range c.Replicas() {
		tx := c.Replica(id).Begin()
		ref := CompSetAt(tx, "event1")
		if ref.SizeObserved() != 1 {
			t.Fatalf("replica %s size = %d", id, ref.SizeObserved())
		}
		tx.Commit()
	}
}

func TestTxnMisuse(t *testing.T) {
	_, c := newTestCluster(10)
	east := c.Replica(wan.USEast)
	tx := east.Begin()
	tx.Commit()
	defer func() {
		if recover() == nil {
			t.Fatal("double commit must panic")
		}
	}()
	tx.Commit()
}

func TestTypeMismatchPanics(t *testing.T) {
	_, c := newTestCluster(11)
	east := c.Replica(wan.USEast)
	tx := east.Begin()
	AWSetAt(tx, "obj").Add("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("type mismatch must panic")
		}
	}()
	CounterAt(tx, "obj").Add(1)
}

func TestMessagesCounted(t *testing.T) {
	sim, c := newTestCluster(12)
	tx := c.Replica(wan.USEast).Begin()
	AWSetAt(tx, "s").Add("x", "")
	tx.Commit()
	sim.Run()
	if c.MessagesSent != 2 { // two peers
		t.Fatalf("messages = %d, want 2", c.MessagesSent)
	}
	if got := c.Replica(wan.USWest).TxnsDelivered; got != 1 {
		t.Fatalf("west delivered = %d", got)
	}
}

func TestReadOnlyTxnSendsNothing(t *testing.T) {
	_, c := newTestCluster(13)
	tx := c.Replica(wan.USEast).Begin()
	_ = AWSetAt(tx, "s").Elems()
	tx.Commit()
	if c.MessagesSent != 0 {
		t.Fatal("read-only txn must not replicate")
	}
}

func TestPausedReplicaBuffersDeliveries(t *testing.T) {
	sim, c := newTestCluster(5)
	east, west := c.Replica(wan.USEast), c.Replica(wan.USWest)

	c.SetPaused(wan.USWest, true)
	tx := east.Begin()
	AWSetAt(tx, "k").Add("x", "")
	tx.Commit()
	sim.Run()

	// The paused replica received but did not apply; the third replica did.
	wtx := west.Begin()
	if AWSetAt(wtx, "k").Contains("x") {
		t.Fatal("paused replica applied a delivery")
	}
	wtx.Commit()
	if west.PendingCount() == 0 {
		t.Fatal("paused replica did not buffer the delivery")
	}
	etx := c.Replica(wan.EUWest).Begin()
	if !AWSetAt(etx, "k").Contains("x") {
		t.Fatal("unpaused replica missing the delivery")
	}
	etx.Commit()

	// A paused replica can still commit locally.
	wtx2 := west.Begin()
	AWSetAt(wtx2, "k").Add("y", "")
	wtx2.Commit()
	sim.Run()

	// Unpausing drains the buffer in causal order.
	c.SetPaused(wan.USWest, false)
	wtx3 := west.Begin()
	if !AWSetAt(wtx3, "k").Contains("x") {
		t.Fatal("unpause did not drain buffered deliveries")
	}
	wtx3.Commit()
	if west.PendingCount() != 0 {
		t.Fatalf("pending = %d after unpause", west.PendingCount())
	}
}
