package store

import (
	"fmt"
	"sort"
	"sync/atomic"

	"ipa/internal/clock"
	"ipa/internal/crdt"
)

// Txn is a highly available transaction: updates apply immediately at the
// origin replica (read-your-writes) and are buffered for atomic causal
// replication on Commit. Transactions never abort — updates are CRDT
// operations, so concurrent transactions merge instead of conflicting.
//
// Concurrency: a transaction two-phase-locks the shards of every key it
// touches — the first access to a key acquires its shard lock, and all
// held locks release together at Commit — so transactions on one replica
// serialise exactly where their keysets collide. Acquisition follows the
// package's sorted-order discipline: a transaction that needs a
// lower-indexed shard than one it holds first tries a non-blocking
// TryLock and, if contended, releases only the held shards ranked above
// the needed one before reacquiring ascending.
//
// Visibility contract: remote replicas always observe whole effect
// groups (the apply path locks every shard of a group before its first
// update), and single-key reads are always consistent. At the origin, a
// concurrent multi-key reader can observe a partial group only inside a
// writer's contended out-of-order reacquisition window above — rare (it
// needs a TryLock failure) and bounded to the released shards; readers
// that bind all their keys before a writer's first update are ordered
// entirely before or after it.
//
// The first NewTag opens the replica's tag window (commitMu), held to
// Commit, which keeps the transaction's event tags one contiguous block
// of the origin's sequence space; read-only transactions never take it.
type Txn struct {
	r        *Replica
	deps     clock.Vector
	firstSeq uint64
	lastSeq  uint64 // set at commit for update transactions
	updates  []Update
	done     bool
	tagging  bool  // commitMu held (tag window open)
	held     []int // ascending shard indexes whose locks this txn holds
	finish   []func()
}

// Replica returns the origin replica.
func (t *Txn) Replica() *Replica { return t.r }

// ensureTagWindow opens the replica's tag window. commitMu ranks before
// every shard lock, so the transaction's shards are released first and
// reacquired (in order) once the window is open; writes cannot have
// happened yet on the first tag, so nothing half-applied becomes visible.
func (t *Txn) ensureTagWindow() {
	if t.tagging {
		return
	}
	for i := len(t.held) - 1; i >= 0; i-- {
		t.r.shards[t.held[i]].mu.Unlock()
	}
	t.r.commitMu.Lock()
	t.tagging = true
	t.firstSeq = t.r.seq
	for _, h := range t.held {
		t.r.shards[h].mu.Lock()
	}
}

// acquire takes the shard lock for key if the transaction does not hold
// it yet, following the sorted-order discipline.
func (t *Txn) acquire(key string) *shard {
	idx := shardIndex(key)
	sh := &t.r.shards[idx]
	n := len(t.held)
	pos := sort.SearchInts(t.held, idx)
	if pos < n && t.held[pos] == idx {
		return sh // already held
	}
	switch {
	case n == 0 || idx > t.held[n-1]:
		sh.mu.Lock()
		t.held = append(t.held, idx)
	case sh.mu.TryLock():
		// Out of order but uncontended: taking it without blocking cannot
		// deadlock.
		t.held = append(t.held, 0)
		copy(t.held[pos+1:], t.held[pos:])
		t.held[pos] = idx
	default:
		// Contended out-of-order acquisition: release only the held
		// shards ranked above idx (keeping everything below preserves
		// the ascending blocking order), then acquire idx and reacquire
		// the released suffix in order. Effects already applied to the
		// released shards are briefly visible to concurrent local
		// transactions — the one torn-visibility window of the design;
		// see the type comment.
		for i := n - 1; i >= pos; i-- {
			t.r.shards[t.held[i]].mu.Unlock()
		}
		t.held = append(t.held, 0)
		copy(t.held[pos+1:], t.held[pos:])
		t.held[pos] = idx
		for _, h := range t.held[pos:] {
			t.r.shards[h].mu.Lock()
		}
	}
	return sh
}

// object returns the CRDT at key under the transaction's shard lock,
// creating it with mk when absent (and mk non-nil).
func (t *Txn) object(key string, mk func() crdt.CRDT) (crdt.CRDT, bool) {
	sh := t.acquire(key)
	obj, ok := sh.objects[key]
	if !ok && mk != nil {
		obj = mk()
		sh.objects[key] = obj
		ok = true
	}
	return obj, ok
}

// release drops every lock the transaction holds (shards, then the tag
// window).
func (t *Txn) release() {
	for i := len(t.held) - 1; i >= 0; i-- {
		t.r.shards[t.held[i]].mu.Unlock()
	}
	t.held = nil
	if t.tagging {
		t.r.commitMu.Unlock()
		t.tagging = false
	}
}

// NewTag allocates a globally unique event ID for an operation of this
// transaction. The first tag opens the replica's tag window.
func (t *Txn) NewTag() clock.EventID {
	if t.done {
		panic("store: transaction already committed")
	}
	t.ensureTagWindow()
	t.r.seq++
	return clock.EventID{Replica: t.r.id, Seq: t.r.seq}
}

// Apply records a prepared CRDT operation against key: it executes on the
// local object immediately and replicates with the transaction. The object
// must already exist at this replica (the typed *At helpers create it);
// mk, when non-nil, creates it on first use.
func (t *Txn) Apply(key string, op crdt.Op, mk func() crdt.CRDT) {
	if t.done {
		panic("store: transaction already committed")
	}
	t.ensureTagWindow()
	obj, ok := t.object(key, mk)
	if !ok {
		panic(fmt.Sprintf("store: update to unknown object %q", key))
	}
	obj.Apply(op)
	t.updates = append(t.updates, Update{Key: key, Op: op})
}

// OnFinish registers fn to run when the transaction commits, after its
// effects have applied locally, been handed to replication, and every
// shard lock has released. Hooks run in reverse registration order.
func (t *Txn) OnFinish(fn func()) {
	if t.done {
		panic("store: transaction already committed")
	}
	t.finish = append(t.finish, fn)
}

func (t *Txn) runFinish() {
	for i := len(t.finish) - 1; i >= 0; i-- {
		t.finish[i]()
	}
}

// Commit finalises the transaction, releases its shard locks (and tag
// window), and replicates its updates atomically to the other replicas.
// An empty (read-only) transaction sends nothing.
func (t *Txn) Commit() {
	if t.done {
		panic("store: transaction already committed")
	}
	t.done = true
	defer t.runFinish()
	atomic.AddUint64(&t.r.TxnsExecuted, 1)
	if len(t.updates) == 0 {
		if t.tagging && t.r.seq > t.firstSeq {
			// Tags were consumed without updates (e.g. a compensation read
			// that found nothing to repair). The sequence hole must still
			// replicate or every later transaction from this origin would
			// stall remote FIFO delivery forever — commit an empty effect
			// group to account for it.
			t.commitUpdates()
			return
		}
		t.release()
		return
	}
	// Updates imply an open tag window (Apply opens it before appending).
	if t.r.seq == t.firstSeq {
		// Updates whose ops carried no tags (a caller bypassing the
		// Prepare helpers): give the transaction one clock slot so the
		// wire protocol can sequence it.
		t.r.seq++
	}
	t.commitUpdates()
}

// commitUpdates runs the update-transaction commit path under the held
// tag window: advance the local cut, fan out the wire message, release.
func (t *Txn) commitUpdates() {
	c := t.r.cluster
	atomic.AddUint64(&c.TxnsCommitted, 1)
	last := t.r.seq
	t.lastSeq = last
	t.r.clockMu.Lock()
	// The replicated dependency vector must cover everything this
	// transaction could have read — including remote transactions the
	// apply path installed after Begin took its snapshot (the replica is
	// concurrent; reads see the live objects). Folding in the delivered
	// cut at commit, before our own entry advances, restores the
	// "origin's cut at commit" semantics the causal-delivery protocol
	// assumes; on the single-threaded simulator it is a no-op.
	t.deps.Merge(t.r.vc)
	t.r.vc.Set(t.r.id, last)
	t.r.clockCond.Broadcast()
	t.r.clockMu.Unlock()
	m := txnMsg{
		origin:  t.r.id,
		deps:    t.deps,
		firstSq: t.firstSeq,
		lastSeq: last,
		updates: t.updates,
	}
	for _, id := range c.order {
		if id != t.r.id {
			c.send(t.r.id, id, m)
		}
	}
	// The onCommit hook (an external transport's broadcast) runs under the
	// tag window so per-origin enqueue order matches sequence order. A full
	// transport queue blocks here — backpressure holds the window and the
	// shard locks, by design (see DESIGN.md on queue sizing). A durable
	// transport returns a wait (fsync) function, which runs only after
	// release so the disk never stalls the tag window.
	var wait func()
	if c.onCommit != nil {
		wait = c.onCommit(WireTxn{
			Origin:   m.origin,
			Deps:     m.deps.Clone(),
			FirstSeq: m.firstSq,
			LastSeq:  m.lastSeq,
			Updates:  m.updates,
		})
	}
	t.release()
	if wait != nil {
		wait()
	}
}

// Updates returns the number of updates buffered so far.
func (t *Txn) Updates() int { return len(t.updates) }

// KeysTouched returns the number of distinct keys updated so far.
func (t *Txn) KeysTouched() int {
	seen := map[string]bool{}
	for _, u := range t.updates {
		seen[u.Key] = true
	}
	return len(seen)
}

// --- Typed object references -----------------------------------------
//
// The helpers below bind a transaction to a CRDT instance of a given type
// and wrap the prepare/apply cycle, so application code reads naturally:
//
//	enrolled := store.AWSetAt(tx, "enrolled")
//	enrolled.Add("p1|t1", "")
//
// Binding acquires the key's shard lock through the transaction (held to
// commit), so reads through a ref observe a state no concurrent writer is
// mid-way through mutating.

// AWSetRef is a transaction-scoped view of an add-wins set.
type AWSetRef struct {
	tx  *Txn
	key string
	set *crdt.AWSet
}

// AWSetAt binds the add-wins set stored at key.
func AWSetAt(tx *Txn, key string) AWSetRef {
	obj, _ := tx.object(key, crdt.Ctor(crdt.KindAWSet))
	set, ok := obj.(*crdt.AWSet)
	if !ok {
		panic(fmt.Sprintf("store: %s holds %s, not aw-set", key, obj.Type()))
	}
	return AWSetRef{tx: tx, key: key, set: set}
}

// Add inserts elem with a payload.
func (r AWSetRef) Add(elem, payload string) {
	op := r.set.PrepareAdd(elem, payload, r.tx.NewTag())
	r.tx.Apply(r.key, op, nil)
}

// Touch re-asserts membership preserving the payload (paper §4.2.1).
func (r AWSetRef) Touch(elem string) {
	op := r.set.PrepareTouch(elem, r.tx.NewTag())
	r.tx.Apply(r.key, op, nil)
}

// Remove deletes elem (observed adds only: add-wins).
func (r AWSetRef) Remove(elem string) {
	op := r.set.PrepareRemove(elem, r.tx.NewTag())
	r.tx.Apply(r.key, op, nil)
}

// RemoveWhere deletes every element matching pred.
func (r AWSetRef) RemoveWhere(pred crdt.Predicate) {
	op := r.set.PrepareRemoveWhere(pred, r.tx.NewTag())
	r.tx.Apply(r.key, op, nil)
}

// Contains reports membership in the transaction's view.
func (r AWSetRef) Contains(elem string) bool { return r.set.Contains(elem) }

// Elems lists the members.
func (r AWSetRef) Elems() []string { return r.set.Elems() }

// ElemsWhere lists the members matching pred.
func (r AWSetRef) ElemsWhere(pred crdt.Predicate) []string { return r.set.ElemsWhere(pred) }

// Size returns the member count.
func (r AWSetRef) Size() int { return r.set.Size() }

// Payload returns elem's payload.
func (r AWSetRef) Payload(elem string) (string, bool) { return r.set.Payload(elem) }

// RWSetRef is a transaction-scoped view of a remove-wins set.
type RWSetRef struct {
	tx  *Txn
	key string
	set *crdt.RWSet
}

// RWSetAt binds the remove-wins set stored at key.
func RWSetAt(tx *Txn, key string) RWSetRef {
	obj, _ := tx.object(key, crdt.Ctor(crdt.KindRWSet))
	set, ok := obj.(*crdt.RWSet)
	if !ok {
		panic(fmt.Sprintf("store: %s holds %s, not rw-set", key, obj.Type()))
	}
	return RWSetRef{tx: tx, key: key, set: set}
}

// Add inserts elem with a payload.
func (r RWSetRef) Add(elem, payload string) {
	op := r.set.PrepareAdd(elem, payload, r.tx.NewTag())
	r.tx.Apply(r.key, op, nil)
}

// Touch re-asserts membership preserving the payload.
func (r RWSetRef) Touch(elem string) {
	op := r.set.PrepareTouch(elem, r.tx.NewTag())
	r.tx.Apply(r.key, op, nil)
}

// Remove deletes elem (remove-wins: also defeats concurrent adds).
func (r RWSetRef) Remove(elem string) {
	op := r.set.PrepareRemove(elem, r.tx.NewTag())
	r.tx.Apply(r.key, op, nil)
}

// RemoveWhere deletes every matching element, defeating concurrent adds
// (the paper's enrolled(*, t) = false wildcard).
func (r RWSetRef) RemoveWhere(pred crdt.Predicate) {
	op := r.set.PrepareRemoveWhere(pred, r.tx.NewTag())
	r.tx.Apply(r.key, op, nil)
}

// Contains reports membership.
func (r RWSetRef) Contains(elem string) bool { return r.set.Contains(elem) }

// Elems lists the members.
func (r RWSetRef) Elems() []string { return r.set.Elems() }

// ElemsWhere lists the members matching pred.
func (r RWSetRef) ElemsWhere(pred crdt.Predicate) []string { return r.set.ElemsWhere(pred) }

// Size returns the member count.
func (r RWSetRef) Size() int { return r.set.Size() }

// CounterRef is a transaction-scoped view of a PN-counter.
type CounterRef struct {
	tx  *Txn
	key string
	c   *crdt.PNCounter
}

// CounterAt binds the counter stored at key.
func CounterAt(tx *Txn, key string) CounterRef {
	obj, _ := tx.object(key, crdt.Ctor(crdt.KindPNCounter))
	c, ok := obj.(*crdt.PNCounter)
	if !ok {
		panic(fmt.Sprintf("store: %s holds %s, not pn-counter", key, obj.Type()))
	}
	return CounterRef{tx: tx, key: key, c: c}
}

// Add adjusts the counter by delta.
func (r CounterRef) Add(delta int64) {
	op := r.c.PrepareAdd(delta, r.tx.NewTag())
	r.tx.Apply(r.key, op, nil)
}

// Value returns the current count.
func (r CounterRef) Value() int64 { return r.c.Value() }

// BoundedRef is a transaction-scoped view of a bounded (escrow) counter.
type BoundedRef struct {
	tx  *Txn
	key string
	c   *crdt.BoundedCounter
}

// BoundedAt binds the bounded counter stored at key, creating it empty
// (no rights anywhere) when absent.
func BoundedAt(tx *Txn, key string) BoundedRef {
	obj, _ := tx.object(key, crdt.Ctor(crdt.KindBoundedCounter))
	c, ok := obj.(*crdt.BoundedCounter)
	if !ok {
		panic(fmt.Sprintf("store: %s holds %s, not bounded-counter", key, obj.Type()))
	}
	return BoundedRef{tx: tx, key: key, c: c}
}

// Grant adds n fresh rights at the transaction's origin replica (an
// increment of the value).
func (r BoundedRef) Grant(n int64) {
	op := r.c.PrepareGrant(r.tx.r.id, n, r.tx.NewTag())
	r.tx.Apply(r.key, op, nil)
}

// Consume spends n locally held rights (a decrement of the value). It
// returns false — and records nothing — when the origin holds fewer than
// n rights: with every replica respecting this escrow guard the global
// value can never drop below zero, partitions included.
func (r BoundedRef) Consume(n int64) bool {
	if r.c.Local(r.tx.r.id) < n {
		return false
	}
	op, _ := r.c.PrepareConsume(r.tx.r.id, n, r.tx.NewTag())
	r.tx.Apply(r.key, op, nil)
	return true
}

// ForceConsume decrements by n regardless of locally held rights — the
// optimistic overdraft path: the caller has checked the globally visible
// value instead, accepting that a concurrent ForceConsume at a
// partitioned replica can take the merged value below the bound, to be
// repaired by a compensation at read time.
func (r BoundedRef) ForceConsume(n int64) {
	op := crdt.BCConsumeOp{Replica: r.tx.r.id, N: n, Tag: r.tx.NewTag()}
	r.tx.Apply(r.key, op, nil)
}

// Value returns the globally visible value (total rights minus total
// consumed).
func (r BoundedRef) Value() int64 { return r.c.Value() }

// Local returns the rights locally available to the origin replica.
func (r BoundedRef) Local() int64 { return r.c.Local(r.tx.r.id) }

// RegisterRef is a transaction-scoped view of an LWW register.
type RegisterRef struct {
	tx  *Txn
	key string
	reg *crdt.LWWRegister
}

// RegisterAt binds the LWW register stored at key.
func RegisterAt(tx *Txn, key string) RegisterRef {
	obj, _ := tx.object(key, crdt.Ctor(crdt.KindLWWRegister))
	reg, ok := obj.(*crdt.LWWRegister)
	if !ok {
		panic(fmt.Sprintf("store: %s holds %s, not lww-register", key, obj.Type()))
	}
	return RegisterRef{tx: tx, key: key, reg: reg}
}

// Set writes value; the logical timestamp is the op's sequence number, so
// later local writes always supersede earlier ones.
func (r RegisterRef) Set(value string) {
	tag := r.tx.NewTag()
	op := r.reg.PrepareSet(value, tag.Seq, tag)
	r.tx.Apply(r.key, op, nil)
}

// Value returns the register content.
func (r RegisterRef) Value() (string, bool) { return r.reg.Value() }

// CompSetRef is a transaction-scoped view of a Compensation Set. The set
// must have been seeded at every replica (see SeedCompSet) so each copy
// knows the bound.
type CompSetRef struct {
	tx  *Txn
	key string
	set *crdt.CompSet
}

// ObjectSpace is the minimal object-creation surface seeding helpers
// need; *Replica satisfies it, as does any runtime backend replica.
type ObjectSpace interface {
	Object(key string, mk func() crdt.CRDT) crdt.CRDT
}

// SeedCompSet creates the compensation set with the given bound at one
// replica; call it for every replica during setup so the constraint is
// known cluster-wide before any update replicates. (Compensation sets are
// the one CRDT the constructor registry cannot build from a remote op:
// the bound is object state.)
func SeedCompSet(r ObjectSpace, key string, maxSize int) {
	r.Object(key, func() crdt.CRDT { return crdt.NewCompSet(maxSize) })
}

// CompSetAt binds the compensation set stored at key.
func CompSetAt(tx *Txn, key string) CompSetRef {
	obj, ok := tx.object(key, nil)
	if !ok {
		panic(fmt.Sprintf("store: comp-set %s not seeded at %s", key, tx.r.id))
	}
	set, ok := obj.(*crdt.CompSet)
	if !ok {
		panic(fmt.Sprintf("store: %s holds %s, not comp-set", key, obj.Type()))
	}
	return CompSetRef{tx: tx, key: key, set: set}
}

// Add inserts elem.
func (r CompSetRef) Add(elem, payload string) {
	op := r.set.PrepareAdd(elem, payload, r.tx.NewTag())
	r.tx.Apply(r.key, op, nil)
}

// Remove deletes elem.
func (r CompSetRef) Remove(elem string) {
	op := r.set.PrepareRemove(elem, r.tx.NewTag())
	r.tx.Apply(r.key, op, nil)
}

// Read returns the constraint-respecting view; if the observed state
// violates the bound, the compensating removals execute and commit with
// this transaction (paper §4.2.2).
func (r CompSetRef) Read() []string {
	// Open the tag window up front: Read allocates tags mid-iteration
	// over the set's state, and the window's shard release/reacquire must
	// not happen under its feet.
	r.tx.ensureTagWindow()
	elems, comps := r.set.Read(r.tx.NewTag)
	// Read only prepares the compensating removals; applying them through
	// the transaction executes them locally and replicates them.
	for _, op := range comps {
		r.tx.Apply(r.key, op, nil)
	}
	return elems
}

// SizeObserved returns the raw (possibly violating) size.
func (r CompSetRef) SizeObserved() int { return r.set.Size() }

// Violating reports whether the raw state violates the bound.
func (r CompSetRef) Violating() bool { return r.set.Violating() }

// Compensated returns how many elements this replica's compensations
// removed so far.
func (r CompSetRef) Compensated() int64 { return r.set.CompensationsApplied }
