package store

import (
	"fmt"

	"ipa/internal/clock"
	"ipa/internal/crdt"
)

// Txn is a highly available transaction: updates apply immediately at the
// origin replica (read-your-writes) and are buffered for atomic causal
// replication on Commit. Transactions never abort — updates are CRDT
// operations, so concurrent transactions merge instead of conflicting.
type Txn struct {
	r        *Replica
	deps     clock.Vector
	firstSeq uint64
	updates  []Update
	done     bool
	finish   []func()
}

// Replica returns the origin replica.
func (t *Txn) Replica() *Replica { return t.r }

// NewTag allocates a globally unique event ID for an operation of this
// transaction.
func (t *Txn) NewTag() clock.EventID {
	t.r.seq++
	return clock.EventID{Replica: t.r.id, Seq: t.r.seq}
}

// Apply records a prepared CRDT operation against key: it executes on the
// local object immediately and replicates with the transaction. The object
// must already exist at this replica (the typed *At helpers create it);
// mk, when non-nil, creates it on first use.
func (t *Txn) Apply(key string, op crdt.Op, mk func() crdt.CRDT) {
	if t.done {
		panic("store: transaction already committed")
	}
	obj, ok := t.r.Lookup(key)
	if !ok {
		if mk == nil {
			panic(fmt.Sprintf("store: update to unknown object %q", key))
		}
		obj = t.r.Object(key, mk)
	}
	obj.Apply(op)
	t.updates = append(t.updates, Update{Key: key, Op: op})
}

// OnFinish registers fn to run when the transaction commits, after its
// effects have applied locally and been handed to replication. Hooks run
// in reverse registration order. Concurrent backends (netrepl) use it to
// release the per-replica lock their Begin acquired.
func (t *Txn) OnFinish(fn func()) {
	if t.done {
		panic("store: transaction already committed")
	}
	t.finish = append(t.finish, fn)
}

func (t *Txn) runFinish() {
	for i := len(t.finish) - 1; i >= 0; i-- {
		t.finish[i]()
	}
}

// Commit finalises the transaction and replicates its updates atomically
// to the other replicas. An empty (read-only) transaction sends nothing.
func (t *Txn) Commit() {
	if t.done {
		panic("store: transaction already committed")
	}
	t.done = true
	defer t.runFinish()
	t.r.TxnsExecuted++
	if len(t.updates) == 0 {
		return
	}
	c := t.r.cluster
	c.TxnsCommitted++
	// The origin has already applied the updates; advance its cut.
	t.r.vc.Set(t.r.id, t.r.seq)
	m := txnMsg{
		origin:  t.r.id,
		deps:    t.deps,
		firstSq: t.firstSeq,
		lastSeq: t.r.seq,
		updates: t.updates,
	}
	for _, id := range c.order {
		if id != t.r.id {
			c.send(t.r.id, id, m)
		}
	}
	if c.onCommit != nil {
		c.onCommit(WireTxn{
			Origin:   m.origin,
			Deps:     m.deps.Clone(),
			FirstSeq: m.firstSq,
			LastSeq:  m.lastSeq,
			Updates:  m.updates,
		})
	}
}

// Updates returns the number of updates buffered so far.
func (t *Txn) Updates() int { return len(t.updates) }

// KeysTouched returns the number of distinct keys updated so far.
func (t *Txn) KeysTouched() int {
	seen := map[string]bool{}
	for _, u := range t.updates {
		seen[u.Key] = true
	}
	return len(seen)
}

// --- Typed object references -----------------------------------------
//
// The helpers below bind a transaction to a CRDT instance of a given type
// and wrap the prepare/apply cycle, so application code reads naturally:
//
//	enrolled := store.AWSetAt(tx, "enrolled")
//	enrolled.Add("p1|t1", "")

// AWSetRef is a transaction-scoped view of an add-wins set.
type AWSetRef struct {
	tx  *Txn
	key string
	set *crdt.AWSet
}

// AWSetAt binds the add-wins set stored at key.
func AWSetAt(tx *Txn, key string) AWSetRef {
	obj := tx.r.Object(key, crdt.Ctor(crdt.KindAWSet))
	set, ok := obj.(*crdt.AWSet)
	if !ok {
		panic(fmt.Sprintf("store: %s holds %s, not aw-set", key, obj.Type()))
	}
	return AWSetRef{tx: tx, key: key, set: set}
}

// Add inserts elem with a payload.
func (r AWSetRef) Add(elem, payload string) {
	op := r.set.PrepareAdd(elem, payload, r.tx.NewTag())
	r.tx.Apply(r.key, op, nil)
}

// Touch re-asserts membership preserving the payload (paper §4.2.1).
func (r AWSetRef) Touch(elem string) {
	op := r.set.PrepareTouch(elem, r.tx.NewTag())
	r.tx.Apply(r.key, op, nil)
}

// Remove deletes elem (observed adds only: add-wins).
func (r AWSetRef) Remove(elem string) {
	op := r.set.PrepareRemove(elem, r.tx.NewTag())
	r.tx.Apply(r.key, op, nil)
}

// RemoveWhere deletes every element matching pred.
func (r AWSetRef) RemoveWhere(pred crdt.Predicate) {
	op := r.set.PrepareRemoveWhere(pred, r.tx.NewTag())
	r.tx.Apply(r.key, op, nil)
}

// Contains reports membership in the transaction's view.
func (r AWSetRef) Contains(elem string) bool { return r.set.Contains(elem) }

// Elems lists the members.
func (r AWSetRef) Elems() []string { return r.set.Elems() }

// ElemsWhere lists the members matching pred.
func (r AWSetRef) ElemsWhere(pred crdt.Predicate) []string { return r.set.ElemsWhere(pred) }

// Size returns the member count.
func (r AWSetRef) Size() int { return r.set.Size() }

// Payload returns elem's payload.
func (r AWSetRef) Payload(elem string) (string, bool) { return r.set.Payload(elem) }

// RWSetRef is a transaction-scoped view of a remove-wins set.
type RWSetRef struct {
	tx  *Txn
	key string
	set *crdt.RWSet
}

// RWSetAt binds the remove-wins set stored at key.
func RWSetAt(tx *Txn, key string) RWSetRef {
	obj := tx.r.Object(key, crdt.Ctor(crdt.KindRWSet))
	set, ok := obj.(*crdt.RWSet)
	if !ok {
		panic(fmt.Sprintf("store: %s holds %s, not rw-set", key, obj.Type()))
	}
	return RWSetRef{tx: tx, key: key, set: set}
}

// Add inserts elem with a payload.
func (r RWSetRef) Add(elem, payload string) {
	op := r.set.PrepareAdd(elem, payload, r.tx.NewTag())
	r.tx.Apply(r.key, op, nil)
}

// Touch re-asserts membership preserving the payload.
func (r RWSetRef) Touch(elem string) {
	op := r.set.PrepareTouch(elem, r.tx.NewTag())
	r.tx.Apply(r.key, op, nil)
}

// Remove deletes elem (remove-wins: also defeats concurrent adds).
func (r RWSetRef) Remove(elem string) {
	op := r.set.PrepareRemove(elem, r.tx.NewTag())
	r.tx.Apply(r.key, op, nil)
}

// RemoveWhere deletes every matching element, defeating concurrent adds
// (the paper's enrolled(*, t) = false wildcard).
func (r RWSetRef) RemoveWhere(pred crdt.Predicate) {
	op := r.set.PrepareRemoveWhere(pred, r.tx.NewTag())
	r.tx.Apply(r.key, op, nil)
}

// Contains reports membership.
func (r RWSetRef) Contains(elem string) bool { return r.set.Contains(elem) }

// Elems lists the members.
func (r RWSetRef) Elems() []string { return r.set.Elems() }

// ElemsWhere lists the members matching pred.
func (r RWSetRef) ElemsWhere(pred crdt.Predicate) []string { return r.set.ElemsWhere(pred) }

// Size returns the member count.
func (r RWSetRef) Size() int { return r.set.Size() }

// CounterRef is a transaction-scoped view of a PN-counter.
type CounterRef struct {
	tx  *Txn
	key string
	c   *crdt.PNCounter
}

// CounterAt binds the counter stored at key.
func CounterAt(tx *Txn, key string) CounterRef {
	obj := tx.r.Object(key, crdt.Ctor(crdt.KindPNCounter))
	c, ok := obj.(*crdt.PNCounter)
	if !ok {
		panic(fmt.Sprintf("store: %s holds %s, not pn-counter", key, obj.Type()))
	}
	return CounterRef{tx: tx, key: key, c: c}
}

// Add adjusts the counter by delta.
func (r CounterRef) Add(delta int64) {
	op := r.c.PrepareAdd(delta, r.tx.NewTag())
	r.tx.Apply(r.key, op, nil)
}

// Value returns the current count.
func (r CounterRef) Value() int64 { return r.c.Value() }

// RegisterRef is a transaction-scoped view of an LWW register.
type RegisterRef struct {
	tx  *Txn
	key string
	reg *crdt.LWWRegister
}

// RegisterAt binds the LWW register stored at key.
func RegisterAt(tx *Txn, key string) RegisterRef {
	obj := tx.r.Object(key, crdt.Ctor(crdt.KindLWWRegister))
	reg, ok := obj.(*crdt.LWWRegister)
	if !ok {
		panic(fmt.Sprintf("store: %s holds %s, not lww-register", key, obj.Type()))
	}
	return RegisterRef{tx: tx, key: key, reg: reg}
}

// Set writes value; the logical timestamp is the op's sequence number, so
// later local writes always supersede earlier ones.
func (r RegisterRef) Set(value string) {
	tag := r.tx.NewTag()
	op := r.reg.PrepareSet(value, tag.Seq, tag)
	r.tx.Apply(r.key, op, nil)
}

// Value returns the register content.
func (r RegisterRef) Value() (string, bool) { return r.reg.Value() }

// CompSetRef is a transaction-scoped view of a Compensation Set. The set
// must have been seeded at every replica (see SeedCompSet) so each copy
// knows the bound.
type CompSetRef struct {
	tx  *Txn
	key string
	set *crdt.CompSet
}

// ObjectSpace is the minimal object-creation surface seeding helpers
// need; *Replica satisfies it, as does any runtime backend replica.
type ObjectSpace interface {
	Object(key string, mk func() crdt.CRDT) crdt.CRDT
}

// SeedCompSet creates the compensation set with the given bound at one
// replica; call it for every replica during setup so the constraint is
// known cluster-wide before any update replicates. (Compensation sets are
// the one CRDT the constructor registry cannot build from a remote op:
// the bound is object state.)
func SeedCompSet(r ObjectSpace, key string, maxSize int) {
	r.Object(key, func() crdt.CRDT { return crdt.NewCompSet(maxSize) })
}

// CompSetAt binds the compensation set stored at key.
func CompSetAt(tx *Txn, key string) CompSetRef {
	obj, ok := tx.r.Lookup(key)
	if !ok {
		panic(fmt.Sprintf("store: comp-set %s not seeded at %s", key, tx.r.id))
	}
	set, ok := obj.(*crdt.CompSet)
	if !ok {
		panic(fmt.Sprintf("store: %s holds %s, not comp-set", key, obj.Type()))
	}
	return CompSetRef{tx: tx, key: key, set: set}
}

// Add inserts elem.
func (r CompSetRef) Add(elem, payload string) {
	op := r.set.PrepareAdd(elem, payload, r.tx.NewTag())
	r.tx.Apply(r.key, op, nil)
}

// Remove deletes elem.
func (r CompSetRef) Remove(elem string) {
	op := r.set.PrepareRemove(elem, r.tx.NewTag())
	r.tx.Apply(r.key, op, nil)
}

// Read returns the constraint-respecting view; if the observed state
// violates the bound, the compensating removals execute and commit with
// this transaction (paper §4.2.2).
func (r CompSetRef) Read() []string {
	elems, comps := r.set.Read(r.tx.NewTag)
	// Read only prepares the compensating removals; applying them through
	// the transaction executes them locally and replicates them.
	for _, op := range comps {
		r.tx.Apply(r.key, op, nil)
	}
	return elems
}

// SizeObserved returns the raw (possibly violating) size.
func (r CompSetRef) SizeObserved() int { return r.set.Size() }

// Violating reports whether the raw state violates the bound.
func (r CompSetRef) Violating() bool { return r.set.Violating() }

// Compensated returns how many elements this replica's compensations
// removed so far.
func (r CompSetRef) Compensated() int64 { return r.set.CompensationsApplied }
