package store

import (
	"errors"
	"testing"

	"ipa/internal/wan"
)

func TestSessionReadYourWrites(t *testing.T) {
	sim, c := newTestCluster(20)
	east := c.Replica(wan.USEast)
	west := c.Replica(wan.USWest)

	s := NewSession()
	tx, err := s.Begin(east)
	if err != nil {
		t.Fatal(err)
	}
	AWSetAt(tx, "k").Add("mine", "")
	tx.Commit()
	s.Observe(tx)

	// Immediately attaching to a replica that has not seen the write must
	// fail rather than hide it.
	if _, err := s.Begin(west); err == nil {
		t.Fatal("stale replica accepted")
	} else {
		var stale *ErrStale
		if !errors.As(err, &stale) {
			t.Fatalf("error type = %T", err)
		}
		if stale.Replica != wan.USWest {
			t.Fatalf("stale replica = %s", stale.Replica)
		}
		if stale.Error() == "" {
			t.Fatal("empty error text")
		}
	}

	// After replication the attach succeeds and the write is visible.
	sim.Run()
	tx2, err := s.Begin(west)
	if err != nil {
		t.Fatal(err)
	}
	if !AWSetAt(tx2, "k").Contains("mine") {
		t.Fatal("read-your-writes violated")
	}
	tx2.Commit()
}

func TestSessionMonotonicReads(t *testing.T) {
	sim, c := newTestCluster(21)
	east := c.Replica(wan.USEast)
	west := c.Replica(wan.USWest)

	// Someone else writes at east; replicate everywhere.
	tx := east.Begin()
	AWSetAt(tx, "k").Add("v1", "")
	tx.Commit()
	sim.Run()

	s := NewSession()
	tx1, err := s.Begin(west)
	if err != nil {
		t.Fatal(err)
	}
	_ = AWSetAt(tx1, "k").Elems()
	tx1.Commit()

	// More writes land at east but have not reached eu-west yet; reading
	// at west advanced the session to west's cut, and eu-west (which has
	// the same data) is still acceptable; but a replica artificially
	// behind the session's cut is not.
	behind := c.Replica(wan.EUWest)
	if !s.CanUse(behind) {
		t.Fatal("eu-west should cover the fully replicated cut")
	}
	// Partition eu-west first so it cannot see the next write.
	c.SetPartitioned(wan.USEast, wan.EUWest, true)
	tx2 := east.Begin()
	AWSetAt(tx2, "k").Add("v2", "")
	tx2.Commit()
	sim.RunUntil(sim.Now() + wan.Ms(200))

	// Session reads v2 at east.
	tx3, err := s.Begin(east)
	if err != nil {
		t.Fatal(err)
	}
	tx3.Commit()
	// eu-west never saw v2: attaching there would be a non-monotonic read.
	if s.CanUse(behind) {
		t.Fatal("monotonic reads violated: stale replica accepted after newer read")
	}
	c.SetPartitioned(wan.USEast, wan.EUWest, false)
	sim.Run()
	if !s.CanUse(behind) {
		t.Fatal("caught-up replica should be usable again")
	}
}

func TestSessionCut(t *testing.T) {
	_, c := newTestCluster(22)
	east := c.Replica(wan.USEast)
	s := NewSession()
	if s.Cut().Sum() != 0 {
		t.Fatal("fresh session should have an empty cut")
	}
	tx, _ := s.Begin(east)
	AWSetAt(tx, "k").Add("x", "")
	tx.Commit()
	s.Observe(tx)
	if s.Cut().Get(wan.USEast) == 0 {
		t.Fatal("cut should include the session's write")
	}
	// Mutating the returned cut must not affect the session.
	cut := s.Cut()
	cut.Set(wan.USEast, 999)
	if s.Cut().Get(wan.USEast) == 999 {
		t.Fatal("Cut must return a copy")
	}
}
