package store

import (
	"errors"
	"testing"

	"ipa/internal/wan"
)

func TestSessionReadYourWrites(t *testing.T) {
	sim, c := newTestCluster(20)
	east := c.Replica(wan.USEast)
	west := c.Replica(wan.USWest)

	s := NewSession()
	tx, err := s.Begin(east)
	if err != nil {
		t.Fatal(err)
	}
	AWSetAt(tx, "k").Add("mine", "")
	tx.Commit()
	s.Observe(tx)

	// Immediately attaching to a replica that has not seen the write must
	// fail rather than hide it.
	if _, err := s.Begin(west); err == nil {
		t.Fatal("stale replica accepted")
	} else {
		var stale *ErrStale
		if !errors.As(err, &stale) {
			t.Fatalf("error type = %T", err)
		}
		if stale.Replica != wan.USWest {
			t.Fatalf("stale replica = %s", stale.Replica)
		}
		if stale.Error() == "" {
			t.Fatal("empty error text")
		}
	}

	// After replication the attach succeeds and the write is visible.
	sim.Run()
	tx2, err := s.Begin(west)
	if err != nil {
		t.Fatal(err)
	}
	if !AWSetAt(tx2, "k").Contains("mine") {
		t.Fatal("read-your-writes violated")
	}
	tx2.Commit()
}

func TestSessionMonotonicReads(t *testing.T) {
	sim, c := newTestCluster(21)
	east := c.Replica(wan.USEast)
	west := c.Replica(wan.USWest)

	// Someone else writes at east; replicate everywhere.
	tx := east.Begin()
	AWSetAt(tx, "k").Add("v1", "")
	tx.Commit()
	sim.Run()

	s := NewSession()
	tx1, err := s.Begin(west)
	if err != nil {
		t.Fatal(err)
	}
	_ = AWSetAt(tx1, "k").Elems()
	tx1.Commit()

	// More writes land at east but have not reached eu-west yet; reading
	// at west advanced the session to west's cut, and eu-west (which has
	// the same data) is still acceptable; but a replica artificially
	// behind the session's cut is not.
	behind := c.Replica(wan.EUWest)
	if !s.CanUse(behind) {
		t.Fatal("eu-west should cover the fully replicated cut")
	}
	// Partition eu-west first so it cannot see the next write.
	c.SetPartitioned(wan.USEast, wan.EUWest, true)
	tx2 := east.Begin()
	AWSetAt(tx2, "k").Add("v2", "")
	tx2.Commit()
	sim.RunUntil(sim.Now() + wan.Ms(200))

	// Session reads v2 at east.
	tx3, err := s.Begin(east)
	if err != nil {
		t.Fatal(err)
	}
	tx3.Commit()
	// eu-west never saw v2: attaching there would be a non-monotonic read.
	if s.CanUse(behind) {
		t.Fatal("monotonic reads violated: stale replica accepted after newer read")
	}
	c.SetPartitioned(wan.USEast, wan.EUWest, false)
	sim.Run()
	if !s.CanUse(behind) {
		t.Fatal("caught-up replica should be usable again")
	}
}

// TestSessionMultiKeyTxnAtomicity covers session guarantees across a
// transaction that updates several keys: the atomic effect group either
// gates an attach entirely (none of the keys visible yet) or not at all —
// the session can never observe a prefix of its own transaction.
func TestSessionMultiKeyTxnAtomicity(t *testing.T) {
	sim, c := newTestCluster(23)
	east := c.Replica(wan.USEast)
	west := c.Replica(wan.USWest)

	s := NewSession()
	tx, err := s.Begin(east)
	if err != nil {
		t.Fatal(err)
	}
	// One transaction, three keys (and four updates: the counter bumps
	// the sequence too) — the session's cut after Observe must cover the
	// whole group, not its first update.
	AWSetAt(tx, "orders").Add("o1", "")
	AWSetAt(tx, "lines/o1").Add("item-a", "")
	CounterAt(tx, "stock/item-a").Add(-1)
	tx.Commit()
	s.Observe(tx)

	if got, want := s.Cut().Get(wan.USEast), east.Clock().Get(wan.USEast); got != want {
		t.Fatalf("session cut %d, origin committed %d — the cut must cover the whole transaction", got, want)
	}

	// Before replication, west has none of the keys; attaching must fail.
	if _, err := s.Begin(west); err == nil {
		t.Fatal("attach to a replica with no key of the transaction should fail")
	}

	// After replication the attach succeeds and every key of the group is
	// visible — a replica can never satisfy the session with a partial
	// transaction because delivery applies effect groups atomically.
	sim.Run()
	tx2, err := s.Begin(west)
	if err != nil {
		t.Fatal(err)
	}
	if !AWSetAt(tx2, "orders").Contains("o1") {
		t.Fatal("orders entry missing at west")
	}
	if !AWSetAt(tx2, "lines/o1").Contains("item-a") {
		t.Fatal("order line missing at west")
	}
	if v := CounterAt(tx2, "stock/item-a").Value(); v != -1 {
		t.Fatalf("stock = %d, want -1", v)
	}
	tx2.Commit()
}

// TestSessionWritesFollowReads pins the writes-follow-reads guarantee
// across replicas with a multi-key read-modify-write: a transaction
// started through the session depends on everything the session has seen,
// so its updates can only apply where that past is already delivered.
func TestSessionWritesFollowReads(t *testing.T) {
	sim, c := newTestCluster(24)
	east := c.Replica(wan.USEast)
	west := c.Replica(wan.USWest)
	euwest := c.Replica(wan.EUWest)

	// Someone seeds two keys at east; only west receives them (eu-west is
	// partitioned off).
	c.SetPartitioned(wan.USEast, wan.EUWest, true)
	c.SetPartitioned(wan.USWest, wan.EUWest, true)
	seed := east.Begin()
	AWSetAt(seed, "products").Add("p", "")
	CounterAt(seed, "stock/p").Add(5)
	seed.Commit()
	sim.RunUntil(sim.Now() + wan.Ms(500))

	// The session reads both keys at west, then writes a purchase there.
	s := NewSession()
	tx, err := s.Begin(west)
	if err != nil {
		t.Fatal(err)
	}
	if !AWSetAt(tx, "products").Contains("p") {
		t.Fatal("seed not replicated to west")
	}
	AWSetAt(tx, "orders").Add("o-p", "")
	CounterAt(tx, "stock/p").Add(-1)
	tx.Commit()
	s.Observe(tx)

	// eu-west has neither the seed nor the purchase: the session must
	// refuse it (writes follow reads — attaching would show the purchase's
	// context missing), and after heal the purchase arrives only after its
	// causal dependency, never before.
	if s.CanUse(euwest) {
		t.Fatal("session accepted a replica missing its causal past")
	}
	c.SetPartitioned(wan.USEast, wan.EUWest, false)
	c.SetPartitioned(wan.USWest, wan.EUWest, false)
	sim.Run()
	tx2, err := s.Begin(euwest)
	if err != nil {
		t.Fatal(err)
	}
	if !AWSetAt(tx2, "products").Contains("p") || !AWSetAt(tx2, "orders").Contains("o-p") {
		t.Fatal("causal order violated at eu-west")
	}
	if v := CounterAt(tx2, "stock/p").Value(); v != 4 {
		t.Fatalf("stock = %d, want 4", v)
	}
	tx2.Commit()

	// Monotonic writes: a second session transaction at eu-west depends on
	// the first one's effects even though it committed at west.
	tx3, err := s.Begin(euwest)
	if err != nil {
		t.Fatal(err)
	}
	if !AWSetAt(tx3, "orders").Contains("o-p") {
		t.Fatal("session's own write invisible on re-attach")
	}
	tx3.Commit()
}

func TestSessionCut(t *testing.T) {
	_, c := newTestCluster(22)
	east := c.Replica(wan.USEast)
	s := NewSession()
	if s.Cut().Sum() != 0 {
		t.Fatal("fresh session should have an empty cut")
	}
	tx, _ := s.Begin(east)
	AWSetAt(tx, "k").Add("x", "")
	tx.Commit()
	s.Observe(tx)
	if s.Cut().Get(wan.USEast) == 0 {
		t.Fatal("cut should include the session's write")
	}
	// Mutating the returned cut must not affect the session.
	cut := s.Cut()
	cut.Set(wan.USEast, 999)
	if s.Cut().Get(wan.USEast) == 999 {
		t.Fatal("Cut must return a copy")
	}
}
