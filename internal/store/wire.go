package store

import (
	"bytes"
	"encoding/gob"

	"ipa/internal/clock"
	"ipa/internal/crdt"
)

// WireTxn is the serialisable form of a committed transaction — the
// replication unit exchanged between replicas. Inside the simulator the
// equivalent message is passed by value; a networked transport (package
// netrepl) encodes WireTxn with encoding/gob.
type WireTxn struct {
	Origin   clock.ReplicaID
	Deps     clock.Vector
	FirstSeq uint64
	LastSeq  uint64
	Updates  []Update
}

func init() {
	// Register every concrete operation (and predicate) type carried
	// inside the crdt.Op interface.
	gob.Register(crdt.AWAddOp{})
	gob.Register(crdt.AWRemoveOp{})
	gob.Register(crdt.RWAddOp{})
	gob.Register(crdt.RWRemoveOp{})
	gob.Register(crdt.RWRemoveWhereOp{})
	gob.Register(crdt.CounterOp{})
	gob.Register(crdt.BCConsumeOp{})
	gob.Register(crdt.BCGrantOp{})
	gob.Register(crdt.BCTransferOp{})
	gob.Register(crdt.LWWSetOp{})
	gob.Register(crdt.MVSetOp{})
	gob.Register(crdt.Match{})
	gob.Register(crdt.MatchAll{})
}

// EncodeTxn serialises a transaction for the wire.
func EncodeTxn(w WireTxn) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeTxn deserialises a transaction from the wire.
func DecodeTxn(data []byte) (WireTxn, error) {
	var w WireTxn
	err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w)
	return w, err
}

// OnCommit, when set, is invoked for every committed update transaction
// with its wire form — the hook external transports use to ship
// transactions to remote nodes.
func (c *Cluster) SetOnCommit(fn func(WireTxn)) { c.onCommit = fn }

// Deliver injects a transaction received from an external transport into
// the replica with the given id, going through the same causal delivery
// queue as simulator-internal messages. Unknown origins are fine: the
// vector clocks accommodate any replica identifier.
func (c *Cluster) Deliver(to clock.ReplicaID, w WireTxn) {
	r := c.Replica(to)
	r.receive(txnMsg{
		origin:  w.Origin,
		deps:    w.Deps,
		firstSq: w.FirstSeq,
		lastSeq: w.LastSeq,
		updates: w.Updates,
	})
}
