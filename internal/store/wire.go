package store

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"ipa/internal/clock"
	"ipa/internal/wan"
)

// WireTxn is the serialisable form of a committed transaction — the
// replication unit exchanged between replicas. Inside the simulator the
// equivalent message is passed by value; a networked transport (package
// netrepl) encodes WireTxn with encoding/gob.
type WireTxn struct {
	Origin   clock.ReplicaID
	Deps     clock.Vector
	FirstSeq uint64
	LastSeq  uint64
	Updates  []Update
}

// The concrete operation (and predicate) types carried inside the crdt.Op
// interface are gob-registered by the crdt constructor registry — the one
// place that enumerates them for every backend.

// EncodeTxn serialises a transaction for the wire (the legacy v0 frame:
// a bare gob-encoded WireTxn with no header).
func EncodeTxn(w WireTxn) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeTxn deserialises a single transaction from a legacy v0 frame.
func DecodeTxn(data []byte) (WireTxn, error) {
	var w WireTxn
	err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w)
	return w, err
}

// Batch frame format (v1). A batch frame carries any number of
// transactions under a versioned header so future encodings can evolve
// without breaking old receivers:
//
//	offset 0..3  magic "IPAB"
//	offset 4     version byte (currently batchVersion)
//	offset 5..   gob-encoded wireBatch
//
// The magic cannot collide with a legacy v0 frame: a gob stream always
// begins with a type-definition record whose first byte is a small
// unsigned length, never 'I' (0x49), so DecodeFrame can distinguish the
// two formats from the first byte alone.
const (
	batchMagic   = "IPAB"
	batchVersion = 1
)

type wireBatch struct {
	Txns []WireTxn
}

// EncodeBatch serialises a group of transactions as one v1 batch frame.
// Transactions must appear in the order the origin committed them; the
// receiver's causal delivery queue tolerates any inter-batch reordering
// but per-origin order inside a frame keeps delivery single-pass.
func EncodeBatch(txns []WireTxn) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(batchMagic)
	buf.WriteByte(batchVersion)
	if err := gob.NewEncoder(&buf).Encode(wireBatch{Txns: txns}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeFrame deserialises either frame format: a v1 batch frame (magic
// header) or a legacy v0 single-transaction frame (bare gob). Receivers
// use this so old senders interoperate with new ones.
func DecodeFrame(data []byte) ([]WireTxn, error) {
	if len(data) >= len(batchMagic)+1 && string(data[:len(batchMagic)]) == batchMagic {
		if v := data[len(batchMagic)]; v != batchVersion {
			return nil, fmt.Errorf("store: unsupported batch frame version %d", v)
		}
		var b wireBatch
		if err := gob.NewDecoder(bytes.NewReader(data[len(batchMagic)+1:])).Decode(&b); err != nil {
			return nil, err
		}
		return b.Txns, nil
	}
	w, err := DecodeTxn(data)
	if err != nil {
		return nil, err
	}
	return []WireTxn{w}, nil
}

// NewSocketCluster creates the single-member cluster an external
// transport (package netrepl) wraps around one replica: the simulator
// inside never carries messages, it only provides the clock the store API
// needs; all replication flows through SetOnCommit and Deliver.
func NewSocketCluster(id clock.ReplicaID) *Cluster {
	return NewCluster(wan.NewSim(0), wan.NewLatency(0), []clock.ReplicaID{id})
}

// OnCommit, when set, is invoked for every committed update transaction
// with its wire form — the hook external transports use to ship
// transactions to remote nodes.
func (c *Cluster) SetOnCommit(fn func(WireTxn)) { c.onCommit = fn }

// Deliver injects a transaction received from an external transport into
// the replica with the given id, going through the same causal delivery
// queue as simulator-internal messages. Unknown origins are fine: the
// vector clocks accommodate any replica identifier. Duplicates — which
// at-least-once transports produce when they retry a batch after a
// partial failure — are detected by the origin sequence and dropped.
// Deliver buffers without bound and is meant for single-threaded
// callers; concurrent transports use Replica.ApplyExternal instead.
func (c *Cluster) Deliver(to clock.ReplicaID, w WireTxn) {
	r := c.Replica(to)
	if r.dropIfDuplicate(w.Origin, w.LastSeq) {
		return
	}
	r.receive(txnMsg{
		origin:  w.Origin,
		deps:    w.Deps,
		firstSq: w.FirstSeq,
		lastSeq: w.LastSeq,
		updates: w.Updates,
	})
}
