package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sync"

	"ipa/internal/clock"
	"ipa/internal/crdt"
	"ipa/internal/wan"
)

// WireTxn is the serialisable form of a committed transaction — the
// replication unit exchanged between replicas. Inside the simulator the
// equivalent message is passed by value; a networked transport (package
// netrepl) encodes WireTxn with encoding/gob.
type WireTxn struct {
	Origin   clock.ReplicaID
	Deps     clock.Vector
	FirstSeq uint64
	LastSeq  uint64
	Updates  []Update

	// walSeq is transport bookkeeping, never encoded: the WAL sequence
	// number the origin's durable commit hook assigned, which the peer
	// senders wait on before putting the transaction on a socket
	// (broadcast-after-fsync; see SetWALSeq).
	walSeq uint64
}

// SetWALSeq stamps the transaction with its WAL append sequence; WALSeq
// reads it back. The field rides along in memory only (neither codec
// encodes it) so a sender goroutine can gate the socket write on
// WaitSynced without a side table.
func (w *WireTxn) SetWALSeq(seq uint64) { w.walSeq = seq }

// WALSeq returns the stamp set by SetWALSeq (zero when never stamped).
func (w *WireTxn) WALSeq() uint64 { return w.walSeq }

// The concrete operation (and predicate) types carried inside the crdt.Op
// interface are gob-registered by the crdt constructor registry — the one
// place that enumerates them for every backend.

// EncodeTxn serialises a transaction for the wire (the legacy v0 frame:
// a bare gob-encoded WireTxn with no header).
func EncodeTxn(w WireTxn) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeTxn deserialises a single transaction from a legacy v0 frame.
func DecodeTxn(data []byte) (WireTxn, error) {
	var w WireTxn
	err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w)
	return w, err
}

// Batch frame format (v1). A batch frame carries any number of
// transactions under a versioned header so future encodings can evolve
// without breaking old receivers:
//
//	offset 0..3  magic "IPAB"
//	offset 4     version byte (currently batchVersion)
//	offset 5..   gob-encoded wireBatch
//
// The magic cannot collide with a legacy v0 frame: a gob stream always
// begins with a type-definition record whose first byte is a small
// unsigned length, never 'I' (0x49), so DecodeFrame can distinguish the
// two formats from the first byte alone.
const (
	batchMagic   = "IPAB"
	batchVersion = 1

	// WireVersionGob selects the v1 gob batch frame — kept encodable for
	// mixed-version meshes (netrepl.Config.WireVersion forces it).
	WireVersionGob = 1
	// WireVersionV2 selects the compact binary frame: hand-encoded txn
	// records and reflection-free op payloads (crdt wire codec). The
	// default for new senders.
	WireVersionV2 = 2
)

type wireBatch struct {
	Txns []WireTxn
}

// EncodeBatch serialises a group of transactions as one v1 batch frame.
// Transactions must appear in the order the origin committed them; the
// receiver's causal delivery queue tolerates any inter-batch reordering
// but per-origin order inside a frame keeps delivery single-pass.
func EncodeBatch(txns []WireTxn) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(batchMagic)
	buf.WriteByte(batchVersion)
	if err := gob.NewEncoder(&buf).Encode(wireBatch{Txns: txns}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeFrame deserialises any frame format a peer may send: a v2 binary
// batch frame, a v1 gob batch frame (both under the magic header), or a
// legacy v0 single-transaction frame (bare gob). Receivers use this so
// senders of any version interoperate. It never panics on any input.
func DecodeFrame(data []byte) ([]WireTxn, error) {
	if len(data) >= len(batchMagic)+1 && string(data[:len(batchMagic)]) == batchMagic {
		body := data[len(batchMagic)+1:]
		switch v := data[len(batchMagic)]; v {
		case batchVersion:
			var b wireBatch
			if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&b); err != nil {
				return nil, err
			}
			return b.Txns, nil
		case WireVersionV2:
			return decodeBatchV2(body)
		default:
			return nil, fmt.Errorf("store: unsupported batch frame version %d", v)
		}
	}
	w, err := DecodeTxn(data)
	if err != nil {
		return nil, err
	}
	return []WireTxn{w}, nil
}

// Batch frame format (v2) — the compact binary encoding. Same magic +
// version header as v1; the body replaces gob with hand-written encoding
// (varints, length-prefixed strings, crdt wire-ID op payloads):
//
//	uvarint txn count
//	per txn:
//	  origin    string
//	  deps      uvarint count, then (replica string, seq uvarint) pairs
//	            in sorted replica order (deterministic bytes)
//	  firstSeq  uvarint
//	  lastSeq   uvarint
//	  updates   uvarint count, then (key string, op) pairs
//
// Strings are uvarint length + raw bytes; ops are one wire-ID byte + the
// type's MarshalWire payload (see internal/crdt/wire.go).

// FrameEncoder builds batch frames into a reusable buffer, so a steady
// replication stream encodes with zero per-frame allocations. Not safe
// for concurrent use; netrepl gives each peer sender its own.
type FrameEncoder struct {
	version int
	buf     []byte
	deps    []clock.ReplicaID // scratch for sorting dep vectors
}

// NewFrameEncoder returns an encoder producing frames of the given wire
// version (0 defaults to WireVersionV2; WireVersionGob selects the v1 gob
// frame for mixed-version meshes — that path allocates like gob always
// did).
func NewFrameEncoder(version int) *FrameEncoder {
	if version == 0 {
		version = WireVersionV2
	}
	return &FrameEncoder{version: version}
}

// Version reports the wire version this encoder emits.
func (e *FrameEncoder) Version() int { return e.version }

// Encode serialises txns as one batch frame. The returned slice aliases
// the encoder's internal buffer and is valid only until the next Encode
// call — callers must finish writing it to the socket (or copy it) first.
func (e *FrameEncoder) Encode(txns []WireTxn) ([]byte, error) {
	if e.version == WireVersionGob {
		return EncodeBatch(txns)
	}
	b := append(e.buf[:0], batchMagic...)
	b = append(b, WireVersionV2)
	b = binary.AppendUvarint(b, uint64(len(txns)))
	var err error
	for i := range txns {
		if b, err = e.appendTxn(b, &txns[i]); err != nil {
			return nil, err
		}
	}
	e.buf = b
	return b, nil
}

func (e *FrameEncoder) appendTxn(b []byte, w *WireTxn) ([]byte, error) {
	b = crdt.AppendWireString(b, string(w.Origin))
	b = binary.AppendUvarint(b, uint64(len(w.Deps)))
	if len(w.Deps) > 0 {
		keys := e.deps[:0]
		for rep := range w.Deps {
			keys = append(keys, rep)
		}
		// Insertion sort: dep vectors hold a handful of replicas, and
		// sort.Slice would allocate (closure + interface header) on every
		// txn — the exact per-frame garbage this encoder exists to avoid.
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		for _, rep := range keys {
			b = crdt.AppendWireString(b, string(rep))
			b = binary.AppendUvarint(b, w.Deps[rep])
		}
		e.deps = keys[:0]
	}
	b = binary.AppendUvarint(b, w.FirstSeq)
	b = binary.AppendUvarint(b, w.LastSeq)
	b = binary.AppendUvarint(b, uint64(len(w.Updates)))
	var err error
	for i := range w.Updates {
		b = crdt.AppendWireString(b, w.Updates[i].Key)
		if b, err = crdt.AppendOpWire(b, w.Updates[i].Op); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// EncodeBatchV2 serialises txns as one v2 frame into a fresh buffer — the
// convenience form for tests and one-shot callers; hot paths hold a
// FrameEncoder.
func EncodeBatchV2(txns []WireTxn) ([]byte, error) {
	out, err := NewFrameEncoder(WireVersionV2).Encode(txns)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), out...), nil
}

// internPool recycles string-interning tables across frame decodes.
// Replication streams repeat replica IDs, keys, and elements on every
// transaction; a warm table decodes those fields without copying. The
// table is capacity-capped inside the reader, so pooled maps stay small
// no matter how hostile or high-cardinality the traffic.
var internPool = sync.Pool{
	New: func() any { return make(map[string]string, 64) },
}

// decodeBatchV2 deserialises the body of a v2 frame (header already
// consumed). All counts are validated against the remaining bytes before
// allocating, and every error wraps crdt.ErrMalformedWire — a hostile or
// truncated frame fails loudly, never panics, never over-allocates.
func decodeBatchV2(body []byte) ([]WireTxn, error) {
	intern := internPool.Get().(map[string]string)
	defer internPool.Put(intern)
	r := crdt.NewWireReader(body)
	r.SetIntern(intern)
	n, err := r.ReadCount()
	if err != nil {
		return nil, err
	}
	txns := make([]WireTxn, n)
	for i := range txns {
		if err := decodeTxnV2(&r, &txns[i]); err != nil {
			return nil, err
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch", crdt.ErrMalformedWire, r.Len())
	}
	return txns, nil
}

func decodeTxnV2(r *crdt.WireReader, w *WireTxn) error {
	origin, err := r.ReadString()
	if err != nil {
		return err
	}
	w.Origin = clock.ReplicaID(origin)
	nd, err := r.ReadCount()
	if err != nil {
		return err
	}
	if nd > 0 {
		w.Deps = make(clock.Vector, nd)
		for i := 0; i < nd; i++ {
			rep, err := r.ReadString()
			if err != nil {
				return err
			}
			seq, err := r.ReadUvarint()
			if err != nil {
				return err
			}
			w.Deps[clock.ReplicaID(rep)] = seq
		}
	}
	if w.FirstSeq, err = r.ReadUvarint(); err != nil {
		return err
	}
	if w.LastSeq, err = r.ReadUvarint(); err != nil {
		return err
	}
	nu, err := r.ReadCount()
	if err != nil {
		return err
	}
	if nu > 0 {
		w.Updates = make([]Update, nu)
		for i := range w.Updates {
			if w.Updates[i].Key, err = r.ReadString(); err != nil {
				return err
			}
			if w.Updates[i].Op, err = crdt.DecodeOpWire(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// NewSocketCluster creates the single-member cluster an external
// transport (package netrepl) wraps around one replica: the simulator
// inside never carries messages, it only provides the clock the store API
// needs; all replication flows through SetOnCommit and Deliver.
func NewSocketCluster(id clock.ReplicaID) *Cluster {
	return NewCluster(wan.NewSim(0), wan.NewLatency(0), []clock.ReplicaID{id})
}

// OnCommit, when set, is invoked for every committed update transaction
// with its wire form — the hook external transports use to ship
// transactions to remote nodes.
func (c *Cluster) SetOnCommit(fn func(WireTxn)) {
	c.onCommit = func(w WireTxn) func() { fn(w); return nil }
}

// SetOnCommitSync is SetOnCommit for transports that gate commit on
// durability: the hook runs under the tag window like SetOnCommit's, and
// the wait function it returns (nil for none) runs after the transaction
// has released its locks, blocking Commit — but nothing else — until the
// transport reports the transaction durable.
func (c *Cluster) SetOnCommitSync(fn func(WireTxn) func()) { c.onCommit = fn }

// Deliver injects a transaction received from an external transport into
// the replica with the given id, going through the same causal delivery
// queue as simulator-internal messages. Unknown origins are fine: the
// vector clocks accommodate any replica identifier. Duplicates — which
// at-least-once transports produce when they retry a batch after a
// partial failure — are detected by the origin sequence and dropped.
// Deliver buffers without bound and is meant for single-threaded
// callers; concurrent transports use Replica.ApplyExternal instead.
func (c *Cluster) Deliver(to clock.ReplicaID, w WireTxn) {
	r := c.Replica(to)
	if r.dropIfDuplicate(w.Origin, w.LastSeq) {
		return
	}
	r.receive(txnMsg{
		origin:  w.Origin,
		deps:    w.Deps,
		firstSq: w.FirstSeq,
		lastSeq: w.LastSeq,
		updates: w.Updates,
	})
}
