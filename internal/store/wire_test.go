package store

import (
	"testing"

	"ipa/internal/clock"
	"ipa/internal/crdt"
	"ipa/internal/wan"
)

func sampleTxn(origin clock.ReplicaID, first, last uint64) WireTxn {
	return WireTxn{
		Origin:   origin,
		Deps:     clock.Vector{origin: first},
		FirstSeq: first,
		LastSeq:  last,
		Updates: []Update{
			{Key: "s", Op: crdt.AWAddOp{Elem: "x", Tag: clock.EventID{Replica: origin, Seq: last}}},
		},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	txns := []WireTxn{sampleTxn("a", 0, 1), sampleTxn("a", 1, 2), sampleTxn("b", 0, 1)}
	data, err := EncodeBatch(txns)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("decoded %d txns, want 3", len(back))
	}
	for i := range txns {
		if back[i].Origin != txns[i].Origin || back[i].LastSeq != txns[i].LastSeq {
			t.Fatalf("txn %d: got %+v want %+v", i, back[i], txns[i])
		}
		if len(back[i].Updates) != 1 {
			t.Fatalf("txn %d: lost updates", i)
		}
	}
}

func TestBatchEmpty(t *testing.T) {
	data, err := EncodeBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Fatalf("decoded %d txns from empty batch", len(back))
	}
}

func TestDecodeFrameLegacyCompat(t *testing.T) {
	// A v0 single-transaction frame (bare gob, no header) must still
	// decode through the versioned entry point.
	w := sampleTxn("old", 2, 3)
	data, err := EncodeTxn(w)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] == 'I' {
		t.Fatal("legacy frame collides with batch magic")
	}
	back, err := DecodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Origin != "old" || back[0].LastSeq != 3 {
		t.Fatalf("legacy decode = %+v", back)
	}
}

func TestDecodeFrameRejectsGarbageAndBadVersion(t *testing.T) {
	if _, err := DecodeFrame([]byte("garbage-not-gob")); err == nil {
		t.Fatal("garbage must not decode")
	}
	bad, err := EncodeBatch([]WireTxn{sampleTxn("a", 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	bad[4] = 99 // unsupported version byte
	if _, err := DecodeFrame(bad); err == nil {
		t.Fatal("unsupported version must not decode")
	}
	if _, err := DecodeFrame(append([]byte("IPAB\x01"), "junk"...)); err == nil {
		t.Fatal("corrupt batch body must not decode")
	}
}

func TestDeliverDropsDuplicates(t *testing.T) {
	c := NewCluster(wan.NewSim(1), wan.NewLatency(0), []clock.ReplicaID{"r"})
	w := sampleTxn("remote", 0, 1)
	c.Deliver("r", w)
	c.Deliver("r", w) // duplicate after apply: dropped at the door
	r := c.Replica("r")
	if r.TxnsDelivered != 1 {
		t.Fatalf("TxnsDelivered = %d, want 1", r.TxnsDelivered)
	}
	if r.TxnsDuplicate != 1 {
		t.Fatalf("TxnsDuplicate = %d, want 1", r.TxnsDuplicate)
	}
	if r.PendingCount() != 0 {
		t.Fatalf("pending = %d, want 0", r.PendingCount())
	}
}

func TestDrainDiscardsStaleDuplicateInQueue(t *testing.T) {
	c := NewCluster(wan.NewSim(1), wan.NewLatency(0), []clock.ReplicaID{"r"})
	first := sampleTxn("remote", 0, 1)
	second := sampleTxn("remote", 1, 2)
	// Two copies of `second` arrive before `first` (reordered batches from
	// a retrying sender). Both queue; once `first` lands, one copy applies
	// and the other must be discarded, not stuck forever.
	c.Deliver("r", second)
	c.Deliver("r", second)
	r := c.Replica("r")
	if r.PendingCount() != 2 {
		t.Fatalf("pending = %d, want 2", r.PendingCount())
	}
	c.Deliver("r", first)
	if r.TxnsDelivered != 2 {
		t.Fatalf("TxnsDelivered = %d, want 2", r.TxnsDelivered)
	}
	if r.TxnsDuplicate != 1 {
		t.Fatalf("TxnsDuplicate = %d, want 1", r.TxnsDuplicate)
	}
	if r.PendingCount() != 0 {
		t.Fatalf("pending = %d, want 0", r.PendingCount())
	}
}
