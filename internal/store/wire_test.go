package store

import (
	"bytes"
	"reflect"
	"testing"

	"ipa/internal/clock"
	"ipa/internal/crdt"
	"ipa/internal/wan"
)

func sampleTxn(origin clock.ReplicaID, first, last uint64) WireTxn {
	return WireTxn{
		Origin:   origin,
		Deps:     clock.Vector{origin: first},
		FirstSeq: first,
		LastSeq:  last,
		Updates: []Update{
			{Key: "s", Op: crdt.AWAddOp{Elem: "x", Tag: clock.EventID{Replica: origin, Seq: last}}},
		},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	txns := []WireTxn{sampleTxn("a", 0, 1), sampleTxn("a", 1, 2), sampleTxn("b", 0, 1)}
	data, err := EncodeBatch(txns)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("decoded %d txns, want 3", len(back))
	}
	for i := range txns {
		if back[i].Origin != txns[i].Origin || back[i].LastSeq != txns[i].LastSeq {
			t.Fatalf("txn %d: got %+v want %+v", i, back[i], txns[i])
		}
		if len(back[i].Updates) != 1 {
			t.Fatalf("txn %d: lost updates", i)
		}
	}
}

func TestBatchEmpty(t *testing.T) {
	data, err := EncodeBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Fatalf("decoded %d txns from empty batch", len(back))
	}
}

func TestDecodeFrameLegacyCompat(t *testing.T) {
	// A v0 single-transaction frame (bare gob, no header) must still
	// decode through the versioned entry point.
	w := sampleTxn("old", 2, 3)
	data, err := EncodeTxn(w)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] == 'I' {
		t.Fatal("legacy frame collides with batch magic")
	}
	back, err := DecodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Origin != "old" || back[0].LastSeq != 3 {
		t.Fatalf("legacy decode = %+v", back)
	}
}

func TestDecodeFrameRejectsGarbageAndBadVersion(t *testing.T) {
	if _, err := DecodeFrame([]byte("garbage-not-gob")); err == nil {
		t.Fatal("garbage must not decode")
	}
	bad, err := EncodeBatch([]WireTxn{sampleTxn("a", 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	bad[4] = 99 // unsupported version byte
	if _, err := DecodeFrame(bad); err == nil {
		t.Fatal("unsupported version must not decode")
	}
	if _, err := DecodeFrame(append([]byte("IPAB\x01"), "junk"...)); err == nil {
		t.Fatal("corrupt batch body must not decode")
	}
}

// richTxns builds a batch exercising every registered op type, every
// predicate, multi-replica dep vectors, and empty edge cases — the corpus
// the v2 codec must carry with full fidelity.
func richTxns() []WireTxn {
	e := func(rep string, seq uint64) clock.EventID {
		return clock.EventID{Replica: clock.ReplicaID(rep), Seq: seq}
	}
	return []WireTxn{
		{
			Origin:   "a",
			Deps:     clock.Vector{"a": 4, "b": 9, "c": 2},
			FirstSeq: 5, LastSeq: 7,
			Updates: []Update{
				{Key: "aw", Op: crdt.AWAddOp{Elem: "x", Tag: e("a", 5), Pay: "p", Touch: true}},
				{Key: "aw", Op: crdt.AWRemoveOp{Elem: "x", Tag: e("a", 6), Observed: map[string][]clock.EventID{"x": {e("a", 5)}}}},
				{Key: "aw", Op: crdt.AWRemoveOp{Pred: crdt.Match{Index: 1, Value: "v"}, Tag: e("a", 7)}},
			},
		},
		{
			Origin:   "b",
			FirstSeq: 0, LastSeq: 1, // no deps: the first txn of a fresh origin
			Updates: []Update{
				{Key: "rw", Op: crdt.RWAddOp{Elem: "y", Pay: "q", Tag: e("b", 1), ObservedRemoves: []clock.EventID{e("a", 1)}, ObservedWild: []clock.EventID{e("c", 2)}}},
				{Key: "rw", Op: crdt.RWRemoveOp{Elem: "y", Tag: e("b", 1)}},
				{Key: "rw", Op: crdt.RWRemoveWhereOp{Pred: crdt.MatchAll{}, Tag: e("b", 1)}},
				{Key: "rw", Op: crdt.RWRemoveWhereOp{Pred: crdt.MatchFields{Arity: 2, Fields: []string{"f", "g"}}, Tag: e("b", 1)}},
			},
		},
		{
			Origin: "c", Deps: clock.Vector{"a": 7},
			FirstSeq: 2, LastSeq: 2,
			Updates: []Update{
				{Key: "pn", Op: crdt.CounterOp{Delta: -42, Tag: e("c", 2)}},
				{Key: "bc", Op: crdt.BCConsumeOp{Replica: "c", N: 3, Tag: e("c", 2)}},
				{Key: "bc", Op: crdt.BCGrantOp{Replica: "a", N: 10, Tag: e("c", 2)}},
				{Key: "bc", Op: crdt.BCTransferOp{From: "c", To: "a", N: 1, Tag: e("c", 2)}},
				{Key: "lww", Op: crdt.LWWSetOp{Value: "v", TS: 99, Tag: e("c", 2)}},
				{Key: "mv", Op: crdt.MVSetOp{Value: "m", Tag: e("c", 2), Observed: []clock.EventID{e("a", 1)}}},
			},
		},
		{Origin: "d", FirstSeq: 0, LastSeq: 0}, // empty txn record
	}
}

func TestBatchV2RoundTrip(t *testing.T) {
	txns := richTxns()
	data, err := EncodeBatchV2(txns)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, txns) {
		t.Fatalf("v2 round trip mismatch:\n got %+v\nwant %+v", back, txns)
	}
	// Encoding is deterministic, so decode→re-encode is byte-identical —
	// the property the fuzz target leans on.
	again, err := EncodeBatchV2(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, data) {
		t.Fatal("v2 re-encode of decoded batch differs from original bytes")
	}
}

func TestBatchV2Empty(t *testing.T) {
	data, err := EncodeBatchV2(nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Fatalf("decoded %d txns from empty v2 batch", len(back))
	}
}

// TestGobV2CrossDecode pins that the v1 gob and v2 binary encodings of
// the same batch decode to the same transactions — the invariant that
// lets mixed-version meshes converge.
func TestGobV2CrossDecode(t *testing.T) {
	txns := richTxns()
	gobFrame, err := EncodeBatch(txns)
	if err != nil {
		t.Fatal(err)
	}
	fromGob, err := DecodeFrame(gobFrame)
	if err != nil {
		t.Fatal(err)
	}
	// Compare through v2 re-encoding: gob decodes absent collections to
	// nil just like v2 does, but byte comparison is immune to any such
	// representational drift.
	a, err := EncodeBatchV2(fromGob)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeBatchV2(txns)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("v1-decoded batch is not v2-equivalent to the original")
	}
}

// TestFrameEncoderReuse pins the buffer-reuse contract: back-to-back
// encodes return correct frames, and the steady state allocates nothing.
func TestFrameEncoderReuse(t *testing.T) {
	enc := NewFrameEncoder(0)
	if enc.Version() != WireVersionV2 {
		t.Fatalf("default version = %d, want %d", enc.Version(), WireVersionV2)
	}
	txns := richTxns()
	want, err := EncodeBatchV2(txns)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := enc.Encode(txns)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("encode %d: frame differs from one-shot encoding", i)
		}
	}
	// Steady-state allocations. The sample batch includes an AWRemoveOp
	// with a single observed element (no sort scratch) and multi-entry
	// dep vectors (insertion sort in place) — zero allocs required.
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := enc.Encode(txns); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("FrameEncoder.Encode allocates %.1f objects per frame, want 0", allocs)
	}
}

func TestFrameEncoderGobVersion(t *testing.T) {
	enc := NewFrameEncoder(WireVersionGob)
	txns := []WireTxn{sampleTxn("a", 0, 1)}
	data, err := enc.Encode(txns)
	if err != nil {
		t.Fatal(err)
	}
	if data[4] != batchVersion {
		t.Fatalf("version byte = %d, want v1 gob frame", data[4])
	}
	back, err := DecodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Origin != "a" {
		t.Fatalf("gob-version frame decode = %+v", back)
	}
}

// TestDecodeFrameV2Malformed feeds truncations and corruptions of a valid
// v2 frame to the decoder: every one must error, never panic.
func TestDecodeFrameV2Malformed(t *testing.T) {
	data, err := EncodeBatchV2(richTxns())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 5; cut < len(data); cut++ {
		if _, err := DecodeFrame(data[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(data))
		}
	}
	// Trailing garbage after a well-formed batch is malformed too.
	if _, err := DecodeFrame(append(append([]byte(nil), data...), 0xFF)); err == nil {
		t.Fatal("trailing bytes after batch must not decode")
	}
	// A hostile txn count with no data behind it must not allocate/decode.
	hostile := append([]byte("IPAB\x02"), 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)
	if _, err := DecodeFrame(hostile); err == nil {
		t.Fatal("hostile count must not decode")
	}
}

func TestDeliverDropsDuplicates(t *testing.T) {
	c := NewCluster(wan.NewSim(1), wan.NewLatency(0), []clock.ReplicaID{"r"})
	w := sampleTxn("remote", 0, 1)
	c.Deliver("r", w)
	c.Deliver("r", w) // duplicate after apply: dropped at the door
	r := c.Replica("r")
	if r.TxnsDelivered != 1 {
		t.Fatalf("TxnsDelivered = %d, want 1", r.TxnsDelivered)
	}
	if r.TxnsDuplicate != 1 {
		t.Fatalf("TxnsDuplicate = %d, want 1", r.TxnsDuplicate)
	}
	if r.PendingCount() != 0 {
		t.Fatalf("pending = %d, want 0", r.PendingCount())
	}
}

func TestDrainDiscardsStaleDuplicateInQueue(t *testing.T) {
	c := NewCluster(wan.NewSim(1), wan.NewLatency(0), []clock.ReplicaID{"r"})
	first := sampleTxn("remote", 0, 1)
	second := sampleTxn("remote", 1, 2)
	// Two copies of `second` arrive before `first` (reordered batches from
	// a retrying sender). Both queue; once `first` lands, one copy applies
	// and the other must be discarded, not stuck forever.
	c.Deliver("r", second)
	c.Deliver("r", second)
	r := c.Replica("r")
	if r.PendingCount() != 2 {
		t.Fatalf("pending = %d, want 2", r.PendingCount())
	}
	c.Deliver("r", first)
	if r.TxnsDelivered != 2 {
		t.Fatalf("TxnsDelivered = %d, want 2", r.TxnsDelivered)
	}
	if r.TxnsDuplicate != 1 {
		t.Fatalf("TxnsDuplicate = %d, want 1", r.TxnsDuplicate)
	}
	if r.PendingCount() != 0 {
		t.Fatalf("pending = %d, want 0", r.PendingCount())
	}
}
