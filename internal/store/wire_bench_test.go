package store

import (
	"testing"

	"ipa/internal/clock"
	"ipa/internal/crdt"
)

// benchTxns models a steady replication batch: the sender-side batcher
// typically coalesces a few dozen small txns (adds, counter bumps, the
// occasional remove) per frame.
func benchTxns(n int) []WireTxn {
	txns := make([]WireTxn, n)
	for i := range txns {
		seq := uint64(i + 1)
		tag := clock.EventID{Replica: "r1", Seq: seq}
		txns[i] = WireTxn{
			Origin:   "r1",
			Deps:     clock.Vector{"r1": seq - 1, "r2": 17, "r3": 9},
			FirstSeq: seq, LastSeq: seq,
			Updates: []Update{
				{Key: "t/enrolled", Op: crdt.AWAddOp{Elem: "p\x1fq", Tag: tag, Pay: "payload"}},
				{Key: "t/budget", Op: crdt.CounterOp{Delta: -1, Tag: tag}},
				{Key: "t/removed", Op: crdt.AWRemoveOp{Elem: "z", Tag: tag, Observed: map[string][]clock.EventID{"z": {{Replica: "r2", Seq: 4}}}}},
			},
		}
	}
	return txns
}

func BenchmarkEncodeBatch(b *testing.B) {
	txns := benchTxns(32)
	b.Run("gob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := EncodeBatch(txns); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("v2", func(b *testing.B) {
		enc := NewFrameEncoder(WireVersionV2)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := enc.Encode(txns); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDecodeBatch(b *testing.B) {
	txns := benchTxns(32)
	gobFrame, err := EncodeBatch(txns)
	if err != nil {
		b.Fatal(err)
	}
	v2Frame, err := EncodeBatchV2(txns)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("gob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeFrame(gobFrame); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("v2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeFrame(v2Frame); err != nil {
				b.Fatal(err)
			}
		}
	})
}
