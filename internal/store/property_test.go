package store

import (
	"fmt"
	"math/rand"
	"testing"

	"ipa/internal/clock"
	"ipa/internal/crdt"
	"ipa/internal/wan"
)

// TestFIFOReorderUnderJitter forces two transactions from the same origin
// to arrive out of order at a peer (the second on a faster link sample)
// and checks the causal queue reorders them.
func TestFIFOReorderUnderJitter(t *testing.T) {
	sim := wan.NewSim(1)
	// A latency model with huge jitter guarantees reordering eventually.
	lat := wan.NewLatency(wan.Ms(40))
	lat.Jitter = 0.9
	ids := []clock.ReplicaID{"a", "b"}
	c := NewCluster(sim, lat, ids)
	a := c.Replica("a")

	// Many back-to-back transactions; with 90% jitter the arrival order
	// at b will differ from the send order many times.
	const n = 50
	for i := 0; i < n; i++ {
		tx := a.Begin()
		AWSetAt(tx, "s").Add(fmt.Sprintf("e%03d", i), "")
		tx.Commit()
	}
	sim.Run()
	b := c.Replica("b")
	tx := b.Begin()
	if got := AWSetAt(tx, "s").Size(); got != n {
		t.Fatalf("b delivered %d of %d transactions", got, n)
	}
	tx.Commit()
	if b.TxnsDelivered != n {
		t.Fatalf("delivered = %d, want %d (exactly once)", b.TxnsDelivered, n)
	}
	// The queue actually had to hold messages at some point.
	if b.QueuedMax < 2 {
		t.Skip("jitter did not reorder in this run (seed-dependent)")
	}
}

// TestRandomWorkloadConvergence drives a random mixed-type workload from
// all replicas with interleaved partial replication, then checks complete
// convergence of every object at every replica — the core guarantee of
// the substrate (causal delivery + CRDT commutativity).
func TestRandomWorkloadConvergence(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		sim := wan.NewSim(seed)
		lat := wan.PaperTopology()
		ids := []clock.ReplicaID{wan.USEast, wan.USWest, wan.EUWest}
		c := NewCluster(sim, lat, ids)
		rng := rand.New(rand.NewSource(seed * 7))

		elems := []string{"x", "y", "z", crdt.JoinTuple("p", "t"), crdt.JoinTuple("q", "t")}
		for step := 0; step < 120; step++ {
			r := c.Replica(ids[rng.Intn(len(ids))])
			tx := r.Begin()
			switch rng.Intn(6) {
			case 0:
				AWSetAt(tx, "aw").Add(elems[rng.Intn(len(elems))], fmt.Sprintf("pay%d", step))
			case 1:
				AWSetAt(tx, "aw").Remove(elems[rng.Intn(len(elems))])
			case 2:
				RWSetAt(tx, "rw").Add(elems[rng.Intn(len(elems))], "")
			case 3:
				RWSetAt(tx, "rw").Remove(elems[rng.Intn(len(elems))])
			case 4:
				CounterAt(tx, "cnt").Add(int64(rng.Intn(7)) - 3)
			case 5:
				RegisterAt(tx, "reg").Set(fmt.Sprintf("v%d", step))
			}
			tx.Commit()
			// Advance a random small amount so replication interleaves.
			sim.RunUntil(sim.Now() + wan.Time(rng.Int63n(int64(wan.Ms(30)))))
		}
		sim.Run()

		type view struct {
			aw, rw []string
			cnt    int64
			reg    string
		}
		var first view
		for i, id := range ids {
			tx := c.Replica(id).Begin()
			v := view{
				aw:  AWSetAt(tx, "aw").Elems(),
				rw:  RWSetAt(tx, "rw").Elems(),
				cnt: CounterAt(tx, "cnt").Value(),
			}
			v.reg, _ = RegisterAt(tx, "reg").Value()
			tx.Commit()
			if i == 0 {
				first = v
				continue
			}
			if fmt.Sprint(v) != fmt.Sprint(first) {
				t.Fatalf("seed %d: replica %s diverged:\n%v\nvs\n%v", seed, id, v, first)
			}
		}
	}
}

// TestCompactionPreservesObservableState runs a workload, snapshots the
// observable state, compacts via the stability horizon, and checks that
// no observable query changes — GC must be invisible.
func TestCompactionPreservesObservableState(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		sim := wan.NewSim(seed)
		ids := []clock.ReplicaID{wan.USEast, wan.USWest, wan.EUWest}
		c := NewCluster(sim, wan.PaperTopology(), ids)
		rng := rand.New(rand.NewSource(seed))

		elems := []string{crdt.JoinTuple("a", "t1"), crdt.JoinTuple("b", "t1"), crdt.JoinTuple("a", "t2")}
		for step := 0; step < 60; step++ {
			r := c.Replica(ids[rng.Intn(len(ids))])
			tx := r.Begin()
			e := elems[rng.Intn(len(elems))]
			switch rng.Intn(5) {
			case 0:
				RWSetAt(tx, "rw").Add(e, "")
			case 1:
				RWSetAt(tx, "rw").Remove(e)
			case 2:
				RWSetAt(tx, "rw").RemoveWhere(crdt.Match{Index: 1, Value: "t1"})
			case 3:
				AWSetAt(tx, "aw").Add(e, "payload")
			case 4:
				AWSetAt(tx, "aw").Remove(e)
			}
			tx.Commit()
			sim.RunUntil(sim.Now() + wan.Time(rng.Int63n(int64(wan.Ms(25)))))
		}
		sim.Run()

		snapshot := func(id clock.ReplicaID) string {
			tx := c.Replica(id).Begin()
			defer tx.Commit()
			return fmt.Sprint(RWSetAt(tx, "rw").Elems(), AWSetAt(tx, "aw").Elems())
		}
		before := map[clock.ReplicaID]string{}
		for _, id := range ids {
			before[id] = snapshot(id)
		}
		h := c.Stabilize()
		if h.Sum() == 0 {
			t.Fatalf("seed %d: stability horizon empty after full convergence", seed)
		}
		for _, id := range ids {
			if after := snapshot(id); after != before[id] {
				t.Fatalf("seed %d: compaction changed observable state at %s:\n%s\nvs\n%s",
					seed, id, before[id], after)
			}
		}
	}
}

// TestPartitionedWritesSurviveHeal checks no update is lost when a
// replica writes during a partition (availability of weak consistency).
func TestPartitionedWritesSurviveHeal(t *testing.T) {
	sim := wan.NewSim(3)
	ids := []clock.ReplicaID{wan.USEast, wan.USWest, wan.EUWest}
	c := NewCluster(sim, wan.PaperTopology(), ids)

	c.SetPartitioned(wan.USEast, wan.EUWest, true)
	c.SetPartitioned(wan.USWest, wan.EUWest, true)

	// eu-west keeps serving writes while isolated.
	eu := c.Replica(wan.EUWest)
	for i := 0; i < 10; i++ {
		tx := eu.Begin()
		AWSetAt(tx, "s").Add(fmt.Sprintf("eu-%d", i), "")
		tx.Commit()
	}
	// The others write too.
	tx := c.Replica(wan.USEast).Begin()
	AWSetAt(tx, "s").Add("east-1", "")
	tx.Commit()
	sim.RunUntil(sim.Now() + wan.Ms(500))

	// During the partition, east sees only its own write.
	etx := c.Replica(wan.USEast).Begin()
	if got := AWSetAt(etx, "s").Size(); got != 1 {
		t.Fatalf("east view during partition = %d, want 1", got)
	}
	etx.Commit()

	c.SetPartitioned(wan.USEast, wan.EUWest, false)
	c.SetPartitioned(wan.USWest, wan.EUWest, false)
	sim.Run()

	for _, id := range ids {
		tx := c.Replica(id).Begin()
		if got := AWSetAt(tx, "s").Size(); got != 11 {
			t.Fatalf("replica %s has %d elements after heal, want 11", id, got)
		}
		tx.Commit()
	}
}
