package store

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ipa/internal/clock"
	"ipa/internal/crdt"
	"ipa/internal/wan"
)

// TestFIFOReorderUnderJitter forces two transactions from the same origin
// to arrive out of order at a peer (the second on a faster link sample)
// and checks the causal queue reorders them.
func TestFIFOReorderUnderJitter(t *testing.T) {
	sim := wan.NewSim(1)
	// A latency model with huge jitter guarantees reordering eventually.
	lat := wan.NewLatency(wan.Ms(40))
	lat.Jitter = 0.9
	ids := []clock.ReplicaID{"a", "b"}
	c := NewCluster(sim, lat, ids)
	a := c.Replica("a")

	// Many back-to-back transactions; with 90% jitter the arrival order
	// at b will differ from the send order many times.
	const n = 50
	for i := 0; i < n; i++ {
		tx := a.Begin()
		AWSetAt(tx, "s").Add(fmt.Sprintf("e%03d", i), "")
		tx.Commit()
	}
	sim.Run()
	b := c.Replica("b")
	tx := b.Begin()
	if got := AWSetAt(tx, "s").Size(); got != n {
		t.Fatalf("b delivered %d of %d transactions", got, n)
	}
	tx.Commit()
	if b.TxnsDelivered != n {
		t.Fatalf("delivered = %d, want %d (exactly once)", b.TxnsDelivered, n)
	}
	// The queue actually had to hold messages at some point.
	if b.QueuedMax < 2 {
		t.Skip("jitter did not reorder in this run (seed-dependent)")
	}
}

// TestRandomWorkloadConvergence drives a random mixed-type workload from
// all replicas with interleaved partial replication, then checks complete
// convergence of every object at every replica — the core guarantee of
// the substrate (causal delivery + CRDT commutativity).
func TestRandomWorkloadConvergence(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		sim := wan.NewSim(seed)
		lat := wan.PaperTopology()
		ids := []clock.ReplicaID{wan.USEast, wan.USWest, wan.EUWest}
		c := NewCluster(sim, lat, ids)
		rng := rand.New(rand.NewSource(seed * 7))

		elems := []string{"x", "y", "z", crdt.JoinTuple("p", "t"), crdt.JoinTuple("q", "t")}
		for step := 0; step < 120; step++ {
			r := c.Replica(ids[rng.Intn(len(ids))])
			tx := r.Begin()
			switch rng.Intn(6) {
			case 0:
				AWSetAt(tx, "aw").Add(elems[rng.Intn(len(elems))], fmt.Sprintf("pay%d", step))
			case 1:
				AWSetAt(tx, "aw").Remove(elems[rng.Intn(len(elems))])
			case 2:
				RWSetAt(tx, "rw").Add(elems[rng.Intn(len(elems))], "")
			case 3:
				RWSetAt(tx, "rw").Remove(elems[rng.Intn(len(elems))])
			case 4:
				CounterAt(tx, "cnt").Add(int64(rng.Intn(7)) - 3)
			case 5:
				RegisterAt(tx, "reg").Set(fmt.Sprintf("v%d", step))
			}
			tx.Commit()
			// Advance a random small amount so replication interleaves.
			sim.RunUntil(sim.Now() + wan.Time(rng.Int63n(int64(wan.Ms(30)))))
		}
		sim.Run()

		type view struct {
			aw, rw []string
			cnt    int64
			reg    string
		}
		var first view
		for i, id := range ids {
			tx := c.Replica(id).Begin()
			v := view{
				aw:  AWSetAt(tx, "aw").Elems(),
				rw:  RWSetAt(tx, "rw").Elems(),
				cnt: CounterAt(tx, "cnt").Value(),
			}
			v.reg, _ = RegisterAt(tx, "reg").Value()
			tx.Commit()
			if i == 0 {
				first = v
				continue
			}
			if fmt.Sprint(v) != fmt.Sprint(first) {
				t.Fatalf("seed %d: replica %s diverged:\n%v\nvs\n%v", seed, id, v, first)
			}
		}
	}
}

// TestCompactionPreservesObservableState runs a workload, snapshots the
// observable state, compacts via the stability horizon, and checks that
// no observable query changes — GC must be invisible.
func TestCompactionPreservesObservableState(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		sim := wan.NewSim(seed)
		ids := []clock.ReplicaID{wan.USEast, wan.USWest, wan.EUWest}
		c := NewCluster(sim, wan.PaperTopology(), ids)
		rng := rand.New(rand.NewSource(seed))

		elems := []string{crdt.JoinTuple("a", "t1"), crdt.JoinTuple("b", "t1"), crdt.JoinTuple("a", "t2")}
		for step := 0; step < 60; step++ {
			r := c.Replica(ids[rng.Intn(len(ids))])
			tx := r.Begin()
			e := elems[rng.Intn(len(elems))]
			switch rng.Intn(5) {
			case 0:
				RWSetAt(tx, "rw").Add(e, "")
			case 1:
				RWSetAt(tx, "rw").Remove(e)
			case 2:
				RWSetAt(tx, "rw").RemoveWhere(crdt.Match{Index: 1, Value: "t1"})
			case 3:
				AWSetAt(tx, "aw").Add(e, "payload")
			case 4:
				AWSetAt(tx, "aw").Remove(e)
			}
			tx.Commit()
			sim.RunUntil(sim.Now() + wan.Time(rng.Int63n(int64(wan.Ms(25)))))
		}
		sim.Run()

		snapshot := func(id clock.ReplicaID) string {
			tx := c.Replica(id).Begin()
			defer tx.Commit()
			return fmt.Sprint(RWSetAt(tx, "rw").Elems(), AWSetAt(tx, "aw").Elems())
		}
		before := map[clock.ReplicaID]string{}
		for _, id := range ids {
			before[id] = snapshot(id)
		}
		h := c.Stabilize()
		if h.Sum() == 0 {
			t.Fatalf("seed %d: stability horizon empty after full convergence", seed)
		}
		for _, id := range ids {
			if after := snapshot(id); after != before[id] {
				t.Fatalf("seed %d: compaction changed observable state at %s:\n%s\nvs\n%s",
					seed, id, before[id], after)
			}
		}
	}
}

// TestPartitionedWritesSurviveHeal checks no update is lost when a
// replica writes during a partition (availability of weak consistency).
func TestPartitionedWritesSurviveHeal(t *testing.T) {
	sim := wan.NewSim(3)
	ids := []clock.ReplicaID{wan.USEast, wan.USWest, wan.EUWest}
	c := NewCluster(sim, wan.PaperTopology(), ids)

	c.SetPartitioned(wan.USEast, wan.EUWest, true)
	c.SetPartitioned(wan.USWest, wan.EUWest, true)

	// eu-west keeps serving writes while isolated.
	eu := c.Replica(wan.EUWest)
	for i := 0; i < 10; i++ {
		tx := eu.Begin()
		AWSetAt(tx, "s").Add(fmt.Sprintf("eu-%d", i), "")
		tx.Commit()
	}
	// The others write too.
	tx := c.Replica(wan.USEast).Begin()
	AWSetAt(tx, "s").Add("east-1", "")
	tx.Commit()
	sim.RunUntil(sim.Now() + wan.Ms(500))

	// During the partition, east sees only its own write.
	etx := c.Replica(wan.USEast).Begin()
	if got := AWSetAt(etx, "s").Size(); got != 1 {
		t.Fatalf("east view during partition = %d, want 1", got)
	}
	etx.Commit()

	c.SetPartitioned(wan.USEast, wan.EUWest, false)
	c.SetPartitioned(wan.USWest, wan.EUWest, false)
	sim.Run()

	for _, id := range ids {
		tx := c.Replica(id).Begin()
		if got := AWSetAt(tx, "s").Size(); got != 11 {
			t.Fatalf("replica %s has %d elements after heal, want 11", id, got)
		}
		tx.Commit()
	}
}

// --- Concurrent sharded-core properties --------------------------------
//
// The tests below exercise the replica core the way a real transport
// does: many client goroutines committing local transactions while
// remote transactions stream in through ApplyExternal on concurrent
// applier goroutines. Run them under -race; they are the property suite
// for the sharded locking discipline (two-phase shard acquisition, tag
// window, per-origin FIFO apply).

// pipeReplicas wires two socket-cluster replicas together: every commit
// at one side is applied at the other by a dedicated applier goroutine,
// preserving per-origin FIFO exactly as netrepl's per-peer apply queues
// do. Call the returned drain function after all writers joined to wait
// for full delivery.
func pipeReplicas(t *testing.T, a, b *Replica) (drain func()) {
	t.Helper()
	wire := func(src, dst *Replica) chan WireTxn {
		ch := make(chan WireTxn, 1<<16)
		src.cluster.SetOnCommit(func(w WireTxn) { ch <- w })
		go func() {
			for w := range ch {
				dst.ApplyExternal(w, nil)
			}
		}()
		return ch
	}
	ab := wire(a, b)
	ba := wire(b, a)
	return func() {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			ac, bc := a.Clock(), b.Clock()
			if len(ab) == 0 && len(ba) == 0 && ac.Equal(bc) {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("replicas did not converge: %s vs %s", a.Clock(), b.Clock())
	}
}

// TestConcurrentLocalVsExternalApply drives concurrent local transactions
// (goroutine-private counters, a shared add-wins set) against the
// concurrent remote apply path, asserting per-key linearizable
// read-your-writes throughout and cross-replica convergence at the end.
func TestConcurrentLocalVsExternalApply(t *testing.T) {
	a := NewSocketCluster("a").Replica("a")
	b := NewSocketCluster("b").Replica("b")
	drain := pipeReplicas(t, a, b)

	const (
		workers = 4
		txnsPer = 120
	)
	var wg sync.WaitGroup
	for side, r := range map[string]*Replica{"a": a, "b": b} {
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(side string, r *Replica, g int) {
				defer wg.Done()
				// Keys are spread over many shards; the private counter is
				// this goroutine's linearizability probe.
				private := fmt.Sprintf("priv/%s/%d", side, g)
				shared := "shared/set"
				for i := 0; i < txnsPer; i++ {
					tx := r.Begin()
					CounterAt(tx, private).Add(1)
					AWSetAt(tx, shared).Add(fmt.Sprintf("%s-%d-%d", side, g, i), "")
					tx.Commit()

					// Read-your-writes, per key: a fresh transaction at the
					// same replica must see every increment this goroutine
					// has committed (nobody else touches the private key).
					check := r.Begin()
					got := CounterAt(check, private).Value()
					check.Commit()
					if got != int64(i+1) {
						t.Errorf("%s/%d: read-own-writes broken: counter=%d after %d commits", side, g, got, i+1)
						return
					}
				}
			}(side, r, g)
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	drain()

	// Convergence: identical shared-set contents and private counters.
	digest := func(r *Replica) string {
		tx := r.Begin()
		defer tx.Commit()
		out := fmt.Sprint(AWSetAt(tx, "shared/set").Size())
		for _, side := range []string{"a", "b"} {
			for g := 0; g < workers; g++ {
				out += fmt.Sprintf(" %d", CounterAt(tx, fmt.Sprintf("priv/%s/%d", side, g)).Value())
			}
		}
		return out
	}
	da, db := digest(a), digest(b)
	if da != db {
		t.Fatalf("replicas diverged:\n%s\nvs\n%s", da, db)
	}
	tx := a.Begin()
	if got, want := AWSetAt(tx, "shared/set").Size(), 2*workers*txnsPer; got != want {
		t.Fatalf("shared set has %d elements, want %d", got, want)
	}
	tx.Commit()
}

// TestCrossShardAtomicityConcurrent is the multi-key atomicity property
// in the concurrent setting: every writer transaction increments all K
// counters (keys chosen to span many shards), so in any transaction-
// consistent snapshot all K values are equal. Reader transactions on
// both the origin and the remote replica assert that continuously while
// writers and the apply path run; a reader observing a half-attached
// effect group fails the test.
func TestCrossShardAtomicityConcurrent(t *testing.T) {
	a := NewSocketCluster("a").Replica("a")
	b := NewSocketCluster("b").Replica("b")
	drain := pipeReplicas(t, a, b)

	keys := make([]string, 6)
	for i := range keys {
		keys[i] = fmt.Sprintf("atomic/k%02d", i*7) // spread across shards
	}

	const (
		writersPer = 3
		txnsPer    = 80
	)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for _, r := range []*Replica{a, b} {
		readers.Add(1)
		go func(r *Replica) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Bind every key first (acquiring all shards), then read:
				// the reads form one transaction-consistent snapshot.
				tx := r.Begin()
				refs := make([]CounterRef, len(keys))
				for i, k := range keys {
					refs[i] = CounterAt(tx, k)
				}
				base := refs[0].Value()
				for i, ref := range refs {
					if v := ref.Value(); v != base {
						t.Errorf("%s: torn effect group: %s=%d but %s=%d",
							r.ID(), keys[0], base, keys[i], v)
						tx.Commit()
						return
					}
				}
				tx.Commit()
			}
		}(r)
	}

	var writers sync.WaitGroup
	rng := rand.New(rand.NewSource(7))
	order := make([][]string, writersPer*2)
	for i := range order {
		// Each writer binds the keys in its own random order, exercising
		// the out-of-order acquisition (escalation) path.
		perm := rng.Perm(len(keys))
		ks := make([]string, len(keys))
		for j, p := range perm {
			ks[j] = keys[p]
		}
		order[i] = ks
	}
	for w := 0; w < writersPer*2; w++ {
		writers.Add(1)
		go func(w int, r *Replica) {
			defer writers.Done()
			for i := 0; i < txnsPer; i++ {
				tx := r.Begin()
				refs := make([]CounterRef, 0, len(keys))
				for _, k := range order[w] {
					refs = append(refs, CounterAt(tx, k))
				}
				for _, ref := range refs {
					ref.Add(1)
				}
				tx.Commit()
			}
		}(w, []*Replica{a, b}[w%2])
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if t.Failed() {
		return
	}
	drain()

	// Final state: all counters equal the total number of transactions on
	// both replicas.
	want := int64(writersPer * 2 * txnsPer)
	for _, r := range []*Replica{a, b} {
		tx := r.Begin()
		for _, k := range keys {
			if v := CounterAt(tx, k).Value(); v != want {
				t.Fatalf("%s: %s = %d, want %d", r.ID(), k, v, want)
			}
		}
		tx.Commit()
	}
}

// TestConcurrentSessionsStayCausal runs sessions on concurrent goroutines
// against one replica pair: session guarantees (read your writes,
// monotonic reads) must hold even while the apply path races the client.
func TestConcurrentSessionsStayCausal(t *testing.T) {
	a := NewSocketCluster("a").Replica("a")
	b := NewSocketCluster("b").Replica("b")
	drain := pipeReplicas(t, a, b)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := NewSession()
			key := fmt.Sprintf("sess/%d", g)
			for i := 0; i < 100; i++ {
				tx, err := s.Begin(a)
				if err != nil {
					t.Errorf("session stale at its own replica: %v", err)
					return
				}
				CounterAt(tx, key).Add(1)
				tx.Commit()
				s.Observe(tx)
				// The session's cut now includes the commit: attaching to
				// the same replica can never fail, and reads must see it.
				tx2, err := s.Begin(a)
				if err != nil {
					t.Errorf("session stale after observe: %v", err)
					return
				}
				if v := CounterAt(tx2, key).Value(); v != int64(i+1) {
					t.Errorf("session read %d after %d observed commits", v, i+1)
					tx2.Commit()
					return
				}
				tx2.Commit()
			}
		}(g)
	}
	wg.Wait()
	drain()
}

// TestCommitDepsCoverMidTransactionReads pins the causal-coverage fix
// deterministically: a remote transaction applied between a local
// transaction's Begin and its reads must appear in the local
// transaction's replicated dependency vector — otherwise a third replica
// could apply the local transaction before what it read ("writes follow
// reads" would break).
func TestCommitDepsCoverMidTransactionReads(t *testing.T) {
	// Produce a wire transaction from origin "b".
	b := NewSocketCluster("b").Replica("b")
	var fromB []WireTxn
	b.cluster.SetOnCommit(func(w WireTxn) { fromB = append(fromB, w) })
	btx := b.Begin()
	CounterAt(btx, "k").Add(5)
	btx.Commit()
	if len(fromB) != 1 {
		t.Fatalf("captured %d transactions from b", len(fromB))
	}

	a := NewSocketCluster("a").Replica("a")
	var fromA []WireTxn
	a.cluster.SetOnCommit(func(w WireTxn) { fromA = append(fromA, w) })

	tx := a.Begin() // snapshot taken before b's transaction arrives
	if !a.ApplyExternal(fromB[0], nil) {
		t.Fatal("external apply refused")
	}
	// The open transaction reads b's effect (live objects), then writes.
	if v := CounterAt(tx, "k").Value(); v != 5 {
		t.Fatalf("read %d, want 5 (remote effect must be visible)", v)
	}
	CounterAt(tx, "k2").Add(1)
	tx.Commit()

	if len(fromA) != 1 {
		t.Fatalf("captured %d transactions from a", len(fromA))
	}
	if got := fromA[0].Deps.Get("b"); got != fromB[0].LastSeq {
		t.Fatalf("replicated deps[b] = %d, want %d: mid-transaction read not covered", got, fromB[0].LastSeq)
	}
}
