package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ipa/internal/clock"
)

// walFrame encodes txns as one v2 replication frame — the WAL's record
// payload format.
func walFrame(t *testing.T, txns ...WireTxn) []byte {
	t.Helper()
	enc := NewFrameEncoder(WireVersionV2)
	data, err := enc.Encode(txns)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// appendSynced appends one single-txn record and makes it durable.
func appendSynced(t *testing.T, w *WAL, txn WireTxn) {
	t.Helper()
	seq, err := w.Append(walFrame(t, txn), []WireTxn{txn})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WaitSynced(seq); err != nil {
		t.Fatal(err)
	}
}

// replayAll reopens the log in dir and returns every replayed txn.
func replayAll(t *testing.T, dir string) ([]WireTxn, *WAL) {
	t.Helper()
	var got []WireTxn
	w, err := OpenWAL(dir, func(_ []byte, txns []WireTxn) error {
		got = append(got, txns...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, w
}

func TestWALReplayRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	w, err := OpenWAL(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want []WireTxn
	for i := uint64(0); i < 20; i++ {
		txn := sampleTxn("a", i, i+1)
		want = append(want, txn)
		appendSynced(t, w, txn)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, w2 := replayAll(t, dir)
	defer w2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d txns, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Origin != want[i].Origin || got[i].FirstSeq != want[i].FirstSeq || got[i].LastSeq != want[i].LastSeq {
			t.Fatalf("txn %d: got %v..%v want %v..%v", i, got[i].FirstSeq, got[i].LastSeq, want[i].FirstSeq, want[i].LastSeq)
		}
	}
	// Replay is append order — a reopened log must keep appending past it.
	appendSynced(t, w2, sampleTxn("a", 20, 21))
	got2, w3 := replayAll(t, dir)
	defer w3.Close()
	if len(got2) != 21 {
		t.Fatalf("after reopen+append: replayed %d txns, want 21", len(got2))
	}
}

func TestWALGroupCommit(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	w, err := OpenWAL(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// Many goroutines append then wait; the group-commit leader should
	// fsync for whole windows of them, so syncs land well under appends.
	const n = 64
	var wg sync.WaitGroup
	wg.Add(n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			defer wg.Done()
			txn := sampleTxn("g", uint64(i), uint64(i)+1)
			seq, err := w.Append(walFrame(t, txn), []WireTxn{txn})
			if err == nil {
				err = w.WaitSynced(seq)
			}
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stats()
	if st.Appends != n {
		t.Fatalf("appends = %d, want %d", st.Appends, n)
	}
	if st.Syncs == 0 || st.Syncs > st.Appends {
		t.Fatalf("syncs = %d with %d appends — group commit not batching", st.Syncs, st.Appends)
	}
	t.Logf("group commit: %d appends in %d syncs", st.Appends, st.Syncs)
}

// tornTailCase mangles a synced single-segment log in some way a crash
// mid-write could; every variant must reopen to the intact prefix.
func TestWALTornTail(t *testing.T) {
	cases := []struct {
		name   string
		mangle func(t *testing.T, path string)
		keep   int // records expected to survive out of 5
	}{
		{"short-header", func(t *testing.T, path string) {
			chopTail(t, path, 3) // fewer bytes than a record header
		}, 4},
		{"short-payload", func(t *testing.T, path string) {
			chopTail(t, path, walRecordHeader+2) // header promises more than remains
		}, 4},
		{"bad-crc", func(t *testing.T, path string) {
			flipLastPayloadByte(t, path)
		}, 4},
		{"trailing-garbage", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			// A plausible-looking header whose payload never made it.
			var hdr [walRecordHeader]byte
			binary.BigEndian.PutUint32(hdr[:4], 1<<20)
			if _, err := f.Write(hdr[:]); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "wal")
			w, err := OpenWAL(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := uint64(0); i < 5; i++ {
				appendSynced(t, w, sampleTxn("a", i, i+1))
			}
			path := walSegmentPath(dir, 0)
			w.Close()

			tc.mangle(t, path)
			got, w2 := replayAll(t, dir)
			if len(got) != tc.keep {
				t.Fatalf("replayed %d records, want %d", len(got), tc.keep)
			}
			// The log stays usable: append past the truncation point and
			// replay once more.
			appendSynced(t, w2, sampleTxn("a", uint64(tc.keep), uint64(tc.keep)+1))
			w2.Close()
			got2, w3 := replayAll(t, dir)
			w3.Close()
			if len(got2) != tc.keep+1 {
				t.Fatalf("after repair+append: replayed %d, want %d", len(got2), tc.keep+1)
			}
		})
	}
}

func chopTail(t *testing.T, path string, leave int) {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut back to the last record boundary, then leave a partial suffix.
	if err := os.Truncate(path, info.Size()-recordSizeOnDisk(t, path)+int64(leave)); err != nil {
		t.Fatal(err)
	}
}

// recordSizeOnDisk returns the byte size of the final record of a log of
// identical-size records.
func recordSizeOnDisk(t *testing.T, path string) int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n := binary.BigEndian.Uint32(data)
	return int64(walRecordHeader + int(n))
}

func flipLastPayloadByte(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// A torn record in an earlier segment ends the whole log: later segments
// would replay records out of order, so they are discarded with it.
func TestWALTornMiddleSegmentDiscardsLaterOnes(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	w, err := OpenWAL(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.segSize = 1 // rotate after every record
	for i := uint64(0); i < 4; i++ {
		appendSynced(t, w, sampleTxn("a", i, i+1))
	}
	w.Close()
	flipLastPayloadByte(t, walSegmentPath(dir, 1))

	got, w2 := replayAll(t, dir)
	if len(got) != 1 {
		t.Fatalf("replayed %d records, want 1 (intact prefix before the torn segment)", len(got))
	}
	// Appends continue past the amputation and replay cleanly.
	appendSynced(t, w2, sampleTxn("a", 1, 2))
	w2.Close()
	got2, w3 := replayAll(t, dir)
	defer w3.Close()
	if len(got2) != 2 {
		t.Fatalf("after discard+append: replayed %d records, want 2", len(got2))
	}
}

func TestWALTruncateBelow(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	w, err := OpenWAL(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.segSize = 1 // seal a segment per record
	for i := uint64(0); i < 6; i++ {
		appendSynced(t, w, sampleTxn("a", i, i+1))
	}
	if st := w.Stats(); st.Segments < 5 {
		t.Fatalf("segments = %d, want several sealed ones", st.Segments)
	}

	// Cut covers the first three records only.
	if err := w.TruncateBelow(clock.Vector{"a": 3}); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Truncated == 0 {
		t.Fatal("no segments truncated below a covering cut")
	}
	// Everything above the cut must still be served.
	tail, err := w.RecordsAbove(clock.Vector{"a": 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 3 {
		t.Fatalf("RecordsAbove returned %d txns, want 3", len(tail))
	}
	for i, txn := range tail {
		if want := uint64(4 + i); txn.LastSeq != want {
			t.Fatalf("tail[%d].LastSeq = %d, want %d", i, txn.LastSeq, want)
		}
	}
}

func TestWALRecordsAboveFiltersPerOrigin(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	w, err := OpenWAL(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendSynced(t, w, sampleTxn("a", 0, 1))
	appendSynced(t, w, sampleTxn("b", 0, 1))
	appendSynced(t, w, sampleTxn("a", 1, 2))
	appendSynced(t, w, sampleTxn("b", 1, 2))

	tail, err := w.RecordsAbove(clock.Vector{"a": 2, "b": 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 || tail[0].Origin != "b" || tail[0].LastSeq != 2 {
		t.Fatalf("tail = %+v, want only b's 1..2", tail)
	}
}

// Abandon is the kill -9 path: buffered-but-unsynced records vanish,
// synced ones survive — and nothing unsynced was ever acknowledged.
func TestWALAbandonDropsUnsyncedSuffix(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	w, err := OpenWAL(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendSynced(t, w, sampleTxn("a", 0, 1))
	appendSynced(t, w, sampleTxn("a", 1, 2))
	// Appended, never synced: still sitting in the in-memory buffer.
	for i := uint64(2); i < 5; i++ {
		txn := sampleTxn("a", i, i+1)
		if _, err := w.Append(walFrame(t, txn), []WireTxn{txn}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Abandon(); err != nil {
		t.Fatal(err)
	}

	got, w2 := replayAll(t, dir)
	defer w2.Close()
	if len(got) != 2 {
		t.Fatalf("replayed %d records after abandon, want the 2 synced ones", len(got))
	}
	// The abandoned handle is dead.
	if _, err := w.Append([]byte("x"), nil); err == nil {
		t.Fatal("append on an abandoned WAL should fail")
	}
}
