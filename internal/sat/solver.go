// Package sat implements a small conflict-driven clause-learning (CDCL)
// boolean satisfiability solver with two-literal watching, first-UIP clause
// learning and an activity-based decision heuristic, plus a Tseitin encoder
// for arbitrary propositional formulas.
//
// The IPA static analysis grounds first-order verification conditions over a
// small scope and decides them here; this package plays the role Z3 plays in
// the paper. Problems are small (hundreds to a few thousand variables), so
// the solver favours clarity over heavy optimisation while still using the
// standard algorithms so that pathological inputs stay tractable.
//
// Literals are non-zero ints in the DIMACS convention: +v is the variable v,
// -v its negation. Variables are allocated with NewVar and numbered from 1.
package sat

import "fmt"

// value of a variable in the partial assignment.
type value int8

const (
	unassigned value = iota
	vTrue
	vFalse
)

func (v value) negate() value {
	switch v {
	case vTrue:
		return vFalse
	case vFalse:
		return vTrue
	}
	return unassigned
}

// lit is the internal literal encoding: variable v (1-based) as positive
// literal 2v, negative literal 2v+1.
type lit uint32

func toLit(l int) lit {
	if l > 0 {
		return lit(2 * l)
	}
	return lit(-2*l + 1)
}

func (l lit) fromLit() int {
	if l&1 == 0 {
		return int(l / 2)
	}
	return -int(l / 2)
}

func (l lit) variable() int { return int(l >> 1) }
func (l lit) neg() lit      { return l ^ 1 }
func (l lit) sign() bool    { return l&1 == 1 } // true when negative

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
// A Solver is not safe for concurrent use.
type Solver struct {
	nVars    int
	clauses  []*clause // problem + learned clauses
	watches  [][]*clause
	assigns  []value // indexed by var
	level    []int   // decision level per var
	reason   []*clause
	trail    []lit
	trailLim []int // trail index at each decision level
	activity []float64
	varInc   float64

	propHead int
	unsat    bool // conflict at level 0 discovered during AddClause/solve

	seen  []bool // scratch for analyze
	Stats Stats
}

// Stats reports solver effort, useful in benchmarks and tests.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Learned      int64
}

type clause struct {
	lits    []lit
	learned bool
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1.0}
	// index 0 unused so vars are 1-based
	s.assigns = append(s.assigns, unassigned)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	return s
}

// NewVar allocates a fresh variable and returns its index (≥ 1).
func (s *Solver) NewVar() int {
	s.nVars++
	s.assigns = append(s.assigns, unassigned)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	return s.nVars
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return s.nVars }

func (s *Solver) litValue(l lit) value {
	v := s.assigns[l.variable()]
	if v == unassigned {
		return unassigned
	}
	if l.sign() {
		return v.negate()
	}
	return v
}

// AddClause adds a disjunction of literals. It returns false if the clause
// makes the formula trivially unsatisfiable (empty clause, or conflicting
// unit at level 0). Tautologies and duplicate literals are simplified away.
// Adding a clause after a successful Solve invalidates the current model.
func (s *Solver) AddClause(lits ...int) bool {
	if s.unsat {
		return false
	}
	s.cancelUntil(0)
	// Simplify: sort-free dedup, drop false lits (level 0), detect tautology
	// and satisfied clauses.
	out := make([]lit, 0, len(lits))
	for _, li := range lits {
		if li == 0 {
			panic("sat: literal 0 in clause")
		}
		v := li
		if v < 0 {
			v = -v
		}
		if v > s.nVars {
			panic(fmt.Sprintf("sat: literal %d references unallocated variable", li))
		}
		l := toLit(li)
		switch s.litValue(l) {
		case vTrue:
			if s.level[l.variable()] == 0 {
				return true // already satisfied forever
			}
		case vFalse:
			if s.level[l.variable()] == 0 {
				continue // literal is dead
			}
		}
		dup := false
		for _, e := range out {
			if e == l {
				dup = true
				break
			}
			if e == l.neg() {
				return true // tautology
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.unsat = true
		return false
	case 1:
		if !s.enqueue(out[0], nil) {
			s.unsat = true
			return false
		}
		if s.propagate() != nil {
			s.unsat = true
			return false
		}
		return true
	}
	c := &clause{lits: out}
	s.attach(c)
	s.clauses = append(s.clauses, c)
	return true
}

func (s *Solver) attach(c *clause) {
	// Watch the first two literals.
	s.watches[c.lits[0].neg()] = append(s.watches[c.lits[0].neg()], c)
	s.watches[c.lits[1].neg()] = append(s.watches[c.lits[1].neg()], c)
}

// enqueue assigns l true with the given reason; returns false on conflict.
func (s *Solver) enqueue(l lit, from *clause) bool {
	switch s.litValue(l) {
	case vTrue:
		return true
	case vFalse:
		return false
	}
	v := l.variable()
	if l.sign() {
		s.assigns[v] = vFalse
	} else {
		s.assigns[v] = vTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// propagate runs unit propagation; returns the conflicting clause or nil.
func (s *Solver) propagate() *clause {
	for s.propHead < len(s.trail) {
		p := s.trail[s.propHead] // p is true; visit clauses watching ¬p
		s.propHead++
		ws := s.watches[p]
		s.watches[p] = nil
		var kept []*clause
		var conflict *clause
		for i, c := range ws {
			if conflict != nil {
				kept = append(kept, ws[i:]...)
				break
			}
			// Normalise so lits[1] is the false literal (¬p ... p true).
			if c.lits[0].neg() == p {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// If first watch is true, clause satisfied.
			if s.litValue(c.lits[0]) == vTrue {
				kept = append(kept, c)
				continue
			}
			// Find a new literal to watch.
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.litValue(c.lits[k]) != vFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].neg()] = append(s.watches[c.lits[1].neg()], c)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, c)
			s.Stats.Propagations++
			if !s.enqueue(c.lits[0], c) {
				conflict = c
			}
		}
		s.watches[p] = append(s.watches[p], kept...)
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.nVars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

// analyze performs first-UIP conflict analysis. It returns the learned
// clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]lit, int) {
	learnt := []lit{0} // slot for the asserting literal
	counter := 0
	var p lit
	havep := false
	idx := len(s.trail) - 1

	for {
		for _, q := range confl.lits {
			if havep && q == p {
				continue
			}
			v := q.variable()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.bumpVar(v)
				if s.level[v] == s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Find the next seen literal on the trail.
		for !s.seen[s.trail[idx].variable()] {
			idx--
		}
		p = s.trail[idx]
		havep = true
		idx--
		v := p.variable()
		s.seen[v] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[v]
	}
	learnt[0] = p.neg()

	// Backtrack level: max level among the non-asserting literals.
	btLevel := 0
	for i := 1; i < len(learnt); i++ {
		if lv := s.level[learnt[i].variable()]; lv > btLevel {
			btLevel = lv
		}
	}
	// Move a literal of btLevel to position 1 so watching works.
	for i := 1; i < len(learnt); i++ {
		if s.level[learnt[i].variable()] == btLevel {
			learnt[1], learnt[i] = learnt[i], learnt[1]
			break
		}
	}
	for i := 1; i < len(learnt); i++ {
		s.seen[learnt[i].variable()] = false
	}
	return learnt, btLevel
}

func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].variable()
		s.assigns[v] = unassigned
		s.reason[v] = nil
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.propHead = len(s.trail)
}

func (s *Solver) pickBranchVar() int {
	best, bestAct := 0, -1.0
	for v := 1; v <= s.nVars; v++ {
		if s.assigns[v] == unassigned && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	return best
}

// Solve decides satisfiability of the added clauses. After a true result,
// Value reports the satisfying assignment. Solve may be called again after
// adding more clauses (incremental use); learned clauses are retained.
func (s *Solver) Solve() bool {
	if s.unsat {
		return false
	}
	s.cancelUntil(0)
	if s.propagate() != nil {
		s.unsat = true
		return false
	}
	for {
		confl := s.propagate()
		if confl != nil {
			s.Stats.Conflicts++
			if s.decisionLevel() == 0 {
				s.unsat = true
				return false
			}
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.enqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learned: true}
				s.clauses = append(s.clauses, c)
				s.attach(c)
				s.Stats.Learned++
				s.enqueue(learnt[0], c)
			}
			s.varInc /= 0.95 // decay by bumping the increment
			continue
		}
		v := s.pickBranchVar()
		if v == 0 {
			return true // complete assignment
		}
		s.Stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		// Phase heuristic: try false first (predicates default to absent).
		s.enqueue(toLit(-v), nil)
	}
}

// Value returns the model value of variable v after a successful Solve.
func (s *Solver) Value(v int) bool { return s.assigns[v] == vTrue }

// Model returns the full model as a slice indexed by variable (entry 0
// unused).
func (s *Solver) Model() []bool {
	m := make([]bool, s.nVars+1)
	for v := 1; v <= s.nVars; v++ {
		m[v] = s.Value(v)
	}
	return m
}
