package sat

import (
	"fmt"
	"strings"
)

// Formula is a propositional formula over solver variables. Build formulas
// with Var, Not, And, Or, Implies, Iff and the constants TrueF/FalseF, then
// assert them on a Solver with Assert (Tseitin transformation).
type Formula struct {
	kind formulaKind
	v    int // for fVar
	args []*Formula
}

type formulaKind uint8

const (
	fTrue formulaKind = iota
	fFalse
	fVar
	fNot
	fAnd
	fOr
)

// TrueF is the constant true formula.
func TrueF() *Formula { return &Formula{kind: fTrue} }

// FalseF is the constant false formula.
func FalseF() *Formula { return &Formula{kind: fFalse} }

// Var lifts solver variable v (allocated with NewVar) into a formula.
func Var(v int) *Formula {
	if v <= 0 {
		panic("sat: Var requires a positive variable index")
	}
	return &Formula{kind: fVar, v: v}
}

// Not negates f, folding constants and double negation.
func Not(f *Formula) *Formula {
	switch f.kind {
	case fTrue:
		return FalseF()
	case fFalse:
		return TrueF()
	case fNot:
		return f.args[0]
	}
	return &Formula{kind: fNot, args: []*Formula{f}}
}

// And is n-ary conjunction with constant folding.
func And(fs ...*Formula) *Formula {
	out := make([]*Formula, 0, len(fs))
	for _, f := range fs {
		switch f.kind {
		case fTrue:
			continue
		case fFalse:
			return FalseF()
		case fAnd:
			out = append(out, f.args...)
		default:
			out = append(out, f)
		}
	}
	switch len(out) {
	case 0:
		return TrueF()
	case 1:
		return out[0]
	}
	return &Formula{kind: fAnd, args: out}
}

// Or is n-ary disjunction with constant folding.
func Or(fs ...*Formula) *Formula {
	out := make([]*Formula, 0, len(fs))
	for _, f := range fs {
		switch f.kind {
		case fFalse:
			continue
		case fTrue:
			return TrueF()
		case fOr:
			out = append(out, f.args...)
		default:
			out = append(out, f)
		}
	}
	switch len(out) {
	case 0:
		return FalseF()
	case 1:
		return out[0]
	}
	return &Formula{kind: fOr, args: out}
}

// Implies returns a → b.
func Implies(a, b *Formula) *Formula { return Or(Not(a), b) }

// Iff returns a ↔ b.
func Iff(a, b *Formula) *Formula { return And(Implies(a, b), Implies(b, a)) }

// IsConst reports whether f is a constant, and if so its value.
func (f *Formula) IsConst() (isConst, val bool) {
	switch f.kind {
	case fTrue:
		return true, true
	case fFalse:
		return true, false
	}
	return false, false
}

// IsLiteral reports whether f is a plain variable or a negated variable.
func (f *Formula) IsLiteral() bool {
	return f.kind == fVar || (f.kind == fNot && f.args[0].kind == fVar)
}

// String renders the formula for debugging.
func (f *Formula) String() string {
	switch f.kind {
	case fTrue:
		return "true"
	case fFalse:
		return "false"
	case fVar:
		return fmt.Sprintf("x%d", f.v)
	case fNot:
		return "!" + f.args[0].String()
	case fAnd, fOr:
		op := " & "
		if f.kind == fOr {
			op = " | "
		}
		parts := make([]string, len(f.args))
		for i, a := range f.args {
			parts[i] = a.String()
		}
		return "(" + strings.Join(parts, op) + ")"
	}
	return "?"
}

// Assert adds clauses to s equivalent to requiring f to hold, using the
// Tseitin transformation (fresh definition variables for internal nodes).
// Returns false if the formula is detected unsatisfiable during encoding.
func (s *Solver) Assert(f *Formula) bool {
	switch f.kind {
	case fTrue:
		return true
	case fFalse:
		return s.AddClause() // empty clause: UNSAT
	case fAnd:
		for _, a := range f.args {
			if !s.Assert(a) {
				return false
			}
		}
		return true
	}
	l := s.encode(f)
	return s.AddClause(l)
}

// encode returns a literal equivalent to f, adding defining clauses.
func (s *Solver) encode(f *Formula) int {
	switch f.kind {
	case fTrue:
		// A fresh variable forced true.
		v := s.NewVar()
		s.AddClause(v)
		return v
	case fFalse:
		v := s.NewVar()
		s.AddClause(-v)
		return v
	case fVar:
		return f.v
	case fNot:
		return -s.encode(f.args[0])
	case fAnd:
		d := s.NewVar()
		all := make([]int, 0, len(f.args)+1)
		for _, a := range f.args {
			la := s.encode(a)
			s.AddClause(-d, la) // d → a
			all = append(all, -la)
		}
		all = append(all, d) // (∧a) → d
		s.AddClause(all...)
		return d
	case fOr:
		d := s.NewVar()
		all := make([]int, 0, len(f.args)+1)
		for _, a := range f.args {
			la := s.encode(a)
			s.AddClause(d, -la) // a → d
			all = append(all, la)
		}
		all = append(all, -d) // d → (∨a)
		s.AddClause(all...)
		return d
	}
	panic("sat: unknown formula kind")
}

// Eval evaluates f under the assignment given by model (indexed by
// variable). Used by tests to cross-check solver models.
func (f *Formula) Eval(model []bool) bool {
	switch f.kind {
	case fTrue:
		return true
	case fFalse:
		return false
	case fVar:
		return model[f.v]
	case fNot:
		return !f.args[0].Eval(model)
	case fAnd:
		for _, a := range f.args {
			if !a.Eval(model) {
				return false
			}
		}
		return true
	case fOr:
		for _, a := range f.args {
			if a.Eval(model) {
				return true
			}
		}
		return false
	}
	panic("sat: unknown formula kind")
}
