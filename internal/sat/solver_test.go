package sat

import (
	"math/rand"
	"testing"
)

func TestTrivial(t *testing.T) {
	s := New()
	a := s.NewVar()
	if !s.AddClause(a) {
		t.Fatal("unit clause rejected")
	}
	if !s.Solve() {
		t.Fatal("x should be SAT")
	}
	if !s.Value(a) {
		t.Fatal("x must be true")
	}
}

func TestEmptyFormulaIsSAT(t *testing.T) {
	s := New()
	if !s.Solve() {
		t.Fatal("empty formula must be SAT")
	}
}

func TestContradiction(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(a)
	if s.AddClause(-a) {
		t.Fatal("adding -a after a should report conflict")
	}
	if s.Solve() {
		t.Fatal("a & -a must be UNSAT")
	}
}

func TestEmptyClauseIsUNSAT(t *testing.T) {
	s := New()
	if s.AddClause() {
		t.Fatal("empty clause must be rejected")
	}
	if s.Solve() {
		t.Fatal("must be UNSAT")
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New()
	a := s.NewVar()
	if !s.AddClause(a, -a) {
		t.Fatal("tautology should be accepted (and dropped)")
	}
	if !s.Solve() {
		t.Fatal("SAT expected")
	}
}

func TestChainImplication(t *testing.T) {
	// x1 & (x1->x2) & ... & (x_{n-1}->x_n): all true.
	s := New()
	const n = 50
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	s.AddClause(vars[0])
	for i := 0; i+1 < n; i++ {
		s.AddClause(-vars[i], vars[i+1])
	}
	if !s.Solve() {
		t.Fatal("chain must be SAT")
	}
	for i, v := range vars {
		if !s.Value(v) {
			t.Fatalf("x%d should be true", i)
		}
	}
}

func TestXorChainUNSAT(t *testing.T) {
	// (a xor b), (b xor c), (a xor c) is UNSAT.
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	xor := func(x, y int) {
		s.AddClause(x, y)
		s.AddClause(-x, -y)
	}
	xor(a, b)
	xor(b, c)
	xor(a, c)
	if s.Solve() {
		t.Fatal("odd xor cycle must be UNSAT")
	}
}

// pigeonhole: n+1 pigeons, n holes — classic UNSAT family.
func pigeonhole(s *Solver, n int) {
	p := make([][]int, n+1) // p[i][j]: pigeon i in hole j
	for i := 0; i <= n; i++ {
		p[i] = make([]int, n)
		for j := 0; j < n; j++ {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i <= n; i++ { // every pigeon somewhere
		row := make([]int, n)
		copy(row, p[i])
		s.AddClause(row...)
	}
	for j := 0; j < n; j++ { // no two pigeons share a hole
		for i := 0; i <= n; i++ {
			for k := i + 1; k <= n; k++ {
				s.AddClause(-p[i][j], -p[k][j])
			}
		}
	}
}

func TestPigeonholeUNSAT(t *testing.T) {
	for n := 2; n <= 5; n++ {
		s := New()
		pigeonhole(s, n)
		if s.Solve() {
			t.Fatalf("PHP(%d) must be UNSAT", n)
		}
	}
}

func TestGraphColoringSAT(t *testing.T) {
	// 3-coloring of a 5-cycle is satisfiable.
	s := New()
	const n, k = 5, 3
	col := make([][]int, n)
	for i := range col {
		col[i] = make([]int, k)
		for c := range col[i] {
			col[i][c] = s.NewVar()
		}
		s.AddClause(col[i]...)
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		for c := 0; c < k; c++ {
			s.AddClause(-col[i][c], -col[j][c])
		}
	}
	if !s.Solve() {
		t.Fatal("3-coloring C5 must be SAT")
	}
	// Check model: adjacent vertices differ.
	color := make([]int, n)
	for i := 0; i < n; i++ {
		color[i] = -1
		for c := 0; c < k; c++ {
			if s.Value(col[i][c]) {
				color[i] = c
				break
			}
		}
		if color[i] == -1 {
			t.Fatalf("vertex %d uncolored", i)
		}
	}
	for i := 0; i < n; i++ {
		if color[i] == color[(i+1)%n] {
			t.Fatalf("adjacent vertices %d,%d share color", i, (i+1)%n)
		}
	}
}

// bruteForce decides satisfiability of CNF over nVars by enumeration.
func bruteForce(nVars int, cnf [][]int) bool {
	for m := 0; m < 1<<nVars; m++ {
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				v := l
				if v < 0 {
					v = -v
				}
				val := m&(1<<(v-1)) != 0
				if (l > 0) == val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		nVars := 3 + rng.Intn(8) // 3..10
		nClauses := 1 + rng.Intn(4*nVars)
		cnf := make([][]int, nClauses)
		for i := range cnf {
			cl := make([]int, 3)
			for j := range cl {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				cl[j] = v
			}
			cnf[i] = cl
		}
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		ok := true
		for _, cl := range cnf {
			if !s.AddClause(cl...) {
				ok = false
				break
			}
		}
		got := ok && s.Solve()
		want := bruteForce(nVars, cnf)
		if got != want {
			t.Fatalf("trial %d: solver=%v brute=%v cnf=%v", trial, got, want, cnf)
		}
		if got {
			// Verify the model satisfies every clause.
			for _, cl := range cnf {
				sat := false
				for _, l := range cl {
					v := l
					if v < 0 {
						v = -v
					}
					if (l > 0) == s.Value(v) {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("trial %d: model violates clause %v", trial, cl)
				}
			}
		}
	}
}

func TestIncrementalSolving(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(a, b)
	if !s.Solve() {
		t.Fatal("SAT expected")
	}
	s.AddClause(-a)
	if !s.Solve() {
		t.Fatal("still SAT with b")
	}
	if !s.Value(b) {
		t.Fatal("b must be true")
	}
	s.AddClause(-b)
	if s.Solve() {
		t.Fatal("UNSAT expected after forcing both false")
	}
}

func TestStatsPopulated(t *testing.T) {
	s := New()
	pigeonhole(s, 4)
	s.Solve()
	if s.Stats.Conflicts == 0 || s.Stats.Decisions == 0 {
		t.Fatalf("expected nontrivial search stats, got %+v", s.Stats)
	}
}
