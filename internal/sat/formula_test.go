package sat

import (
	"math/rand"
	"testing"
)

func TestFormulaConstantFolding(t *testing.T) {
	if And().kind != fTrue {
		t.Fatal("empty And must be true")
	}
	if Or().kind != fFalse {
		t.Fatal("empty Or must be false")
	}
	if Not(TrueF()).kind != fFalse || Not(FalseF()).kind != fTrue {
		t.Fatal("Not of constants must fold")
	}
	if And(TrueF(), FalseF()).kind != fFalse {
		t.Fatal("And with false must fold to false")
	}
	if Or(FalseF(), TrueF()).kind != fTrue {
		t.Fatal("Or with true must fold to true")
	}
	v := Var(1)
	if Not(Not(v)) != v {
		t.Fatal("double negation must fold")
	}
	if And(v).String() != v.String() {
		t.Fatal("unary And folds to its argument")
	}
}

func TestAssertSimple(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	// (a -> b) & a  ==> b
	s.Assert(And(Implies(Var(a), Var(b)), Var(a)))
	if !s.Solve() {
		t.Fatal("SAT expected")
	}
	if !s.Value(a) || !s.Value(b) {
		t.Fatal("both a and b must hold")
	}
}

func TestAssertIffUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.Assert(Iff(Var(a), Not(Var(a))))
	if s.Solve() {
		t.Fatal("a <-> !a must be UNSAT")
	}
}

func TestAssertConstants(t *testing.T) {
	s := New()
	if !s.Assert(TrueF()) || !s.Solve() {
		t.Fatal("asserting true keeps SAT")
	}
	s2 := New()
	if s2.Assert(FalseF()) {
		t.Fatal("asserting false must report failure")
	}
	if s2.Solve() {
		t.Fatal("UNSAT expected")
	}
}

// randomFormula builds a random formula over vars 1..nVars.
func randomFormula(rng *rand.Rand, nVars, depth int) *Formula {
	if depth == 0 || rng.Intn(4) == 0 {
		v := Var(1 + rng.Intn(nVars))
		if rng.Intn(2) == 0 {
			return Not(v)
		}
		return v
	}
	n := 2 + rng.Intn(2)
	args := make([]*Formula, n)
	for i := range args {
		args[i] = randomFormula(rng, nVars, depth-1)
	}
	if rng.Intn(2) == 0 {
		return And(args...)
	}
	return Or(args...)
}

// Property: Tseitin encoding is equisatisfiable with the formula, and any
// model returned satisfies the original formula under Eval.
func TestTseitinAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nVars := 2 + rng.Intn(5)
		f := randomFormula(rng, nVars, 3)

		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		encOK := s.Assert(f)
		got := encOK && s.Solve()

		// Brute force Eval over original vars only.
		want := false
		for m := 0; m < 1<<nVars; m++ {
			model := make([]bool, nVars+1)
			for v := 1; v <= nVars; v++ {
				model[v] = m&(1<<(v-1)) != 0
			}
			if f.Eval(model) {
				want = true
				break
			}
		}
		if got != want {
			t.Fatalf("trial %d: solver=%v brute=%v formula=%s", trial, got, want, f)
		}
		if got {
			model := make([]bool, nVars+1)
			for v := 1; v <= nVars; v++ {
				model[v] = s.Value(v)
			}
			if !f.Eval(model) {
				t.Fatalf("trial %d: model does not satisfy formula %s", trial, f)
			}
		}
	}
}

func TestFormulaString(t *testing.T) {
	f := And(Var(1), Or(Not(Var(2)), Var(3)))
	if got := f.String(); got != "(x1 & (!x2 | x3))" {
		t.Fatalf("String() = %q", got)
	}
}
