package server

import (
	"bufio"
	"fmt"
	"net"
	"time"
)

// Client is a minimal pipelining client for the server's protocol: Send
// queues commands, Flush writes the batch, Recv reads one reply. Do is
// the one-shot convenience. It is what the remote bench workers and the
// end-to-end tests speak; it is not safe for concurrent use (one Client
// per goroutine, like one connection per worker).
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	wbuf []byte
}

// Dial connects to an ipa server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an existing connection (tests use net.Pipe-style pairs).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: bufio.NewReaderSize(conn, 64<<10)}
}

// Send queues one command in the write buffer without flushing.
func (c *Client) Send(args ...string) {
	c.wbuf = AppendCommand(c.wbuf, args...)
}

// SendInline queues a raw inline command line (human/redis-cli form).
func (c *Client) SendInline(line string) {
	c.wbuf = append(c.wbuf, line...)
	c.wbuf = append(c.wbuf, '\r', '\n')
}

// Flush writes all queued commands to the socket.
func (c *Client) Flush() error {
	if len(c.wbuf) == 0 {
		return nil
	}
	_, err := c.conn.Write(c.wbuf)
	c.wbuf = c.wbuf[:0]
	return err
}

// Recv reads one reply.
func (c *Client) Recv() (Reply, error) {
	return ParseReply(c.r)
}

// Do sends one command and waits for its reply (flushing anything queued
// before it, whose replies the caller must already have consumed... so
// only call Do with an empty pipeline).
func (c *Client) Do(args ...string) (Reply, error) {
	c.Send(args...)
	if err := c.Flush(); err != nil {
		return Reply{}, err
	}
	return c.Recv()
}

// DoOK runs Do and converts non-error replies to nil, error replies to
// Go errors — for commands whose only interesting outcome is success.
func (c *Client) DoOK(args ...string) error {
	rp, err := c.Do(args...)
	if err != nil {
		return err
	}
	if err := rp.Err(); err != nil {
		return fmt.Errorf("%s: %w", args[0], err)
	}
	return nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
