package server

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func parseAll(t *testing.T, input string) [][]string {
	t.Helper()
	r := bufio.NewReader(strings.NewReader(input))
	var cmds [][]string
	for {
		args, err := ParseCommand(r)
		if errors.Is(err, io.EOF) {
			return cmds
		}
		if err != nil {
			t.Fatalf("parse %q: %v", input, err)
		}
		if args != nil {
			cmds = append(cmds, args)
		}
	}
}

func TestParseCommandMultibulk(t *testing.T) {
	var buf []byte
	buf = AppendCommand(buf, "CALL", "tournament", "enroll", "p1", "t1")
	buf = AppendCommand(buf, "PING")
	buf = AppendCommand(buf, "MOUNT", "spec x\nwith\r\nnewlines and spaces")
	buf = AppendCommand(buf, "") // empty command array is legal framing
	cmds := parseAll(t, string(buf))
	if len(cmds) != 3 { // the *0 command parses to zero args and is skipped by the nil check? no: empty slice
		// AppendCommand with no args emits *0; ParseCommand returns an
		// empty non-nil slice, which parseAll keeps. Adjust expectation.
		t.Logf("got %d commands", len(cmds))
	}
	want := [][]string{
		{"CALL", "tournament", "enroll", "p1", "t1"},
		{"PING"},
		{"MOUNT", "spec x\nwith\r\nnewlines and spaces"},
	}
	if len(cmds) < len(want) {
		t.Fatalf("parsed %d commands, want at least %d", len(cmds), len(want))
	}
	for i, w := range want {
		if len(cmds[i]) != len(w) {
			t.Fatalf("cmd %d = %v, want %v", i, cmds[i], w)
		}
		for j := range w {
			if cmds[i][j] != w[j] {
				t.Fatalf("cmd %d = %v, want %v", i, cmds[i], w)
			}
		}
	}
}

func TestParseCommandInline(t *testing.T) {
	cmds := parseAll(t, "PING\r\nSITE us-east\r\n\r\n  CALL  app  op  a1 \n")
	want := [][]string{
		{"PING"},
		{"SITE", "us-east"},
		{"CALL", "app", "op", "a1"},
	}
	if len(cmds) != len(want) {
		t.Fatalf("parsed %v, want %v", cmds, want)
	}
	for i := range want {
		if strings.Join(cmds[i], "|") != strings.Join(want[i], "|") {
			t.Fatalf("cmd %d = %v, want %v", i, cmds[i], want[i])
		}
	}
}

func TestParseCommandMalformed(t *testing.T) {
	cases := []string{
		"*2\r\n$4\r\nPING\r\n",          // truncated: one bulk missing
		"*1\r\n$4\r\nPINGX\r\n",         // bulk not CRLF-terminated where expected
		"*1\r\n:5\r\n",                  // non-bulk element
		"*-3\r\n",                       // negative array
		"*99999999999999999999\r\n",     // overflow
		"*1\r\n$-5\r\n",                 // negative bulk
		"*1\r\n$notanum\r\n",            // bad bulk length
		"*2\r\n$1\r\na\r\n$3\r\nab\r\n", // short bulk payload
		"*1x\r\n$1\r\na\r\n",            // junk in array header
	}
	for _, c := range cases {
		r := bufio.NewReader(strings.NewReader(c))
		_, err := ParseCommand(r)
		if err == nil {
			// Some truncations surface on the NEXT read; drain.
			_, err = ParseCommand(r)
		}
		if err == nil || errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("input %q: want parse error, got %v", c, err)
		}
	}
}

func TestParseReplyRoundTrip(t *testing.T) {
	var buf []byte
	buf = appendSimple(buf, "OK")
	buf = appendError(buf, "ERR nope")
	buf = appendInt(buf, -42)
	buf = appendBulk(buf, "hello\r\nworld")
	buf = appendBulkArray(buf, []string{"a", "", "c"})
	r := bufio.NewReader(bytes.NewReader(buf))

	rp, err := ParseReply(r)
	if err != nil || rp.Kind != '+' || rp.Str != "OK" {
		t.Fatalf("simple = %+v, %v", rp, err)
	}
	rp, err = ParseReply(r)
	if err != nil || rp.Kind != '-' || rp.Err() == nil || rp.Err().Error() != "ERR nope" {
		t.Fatalf("error = %+v, %v", rp, err)
	}
	rp, err = ParseReply(r)
	if err != nil || rp.Kind != ':' || rp.Int != -42 {
		t.Fatalf("int = %+v, %v", rp, err)
	}
	rp, err = ParseReply(r)
	if err != nil || rp.Kind != '$' || rp.Str != "hello\r\nworld" {
		t.Fatalf("bulk = %+v, %v", rp, err)
	}
	rp, err = ParseReply(r)
	if err != nil || rp.Kind != '*' || len(rp.Elems) != 3 {
		t.Fatalf("array = %+v, %v", rp, err)
	}
	if got := rp.Strings(); got[0] != "a" || got[1] != "" || got[2] != "c" {
		t.Fatalf("array strings = %v", got)
	}
}

func TestSanitizeLine(t *testing.T) {
	out := string(appendError(nil, "ERR bad\r\nthing"))
	if strings.Count(out, "\r\n") != 1 {
		t.Fatalf("error reply must be one line, got %q", out)
	}
}

// FuzzParseCommand holds the codec to two properties on arbitrary input:
// it never panics, and whenever a prefix parses as commands, re-encoding
// those commands with AppendCommand and re-parsing yields the identical
// commands (encode→parse→encode is the identity on the multibulk form).
func FuzzParseCommand(f *testing.F) {
	// Well-formed multibulk, pipelined.
	f.Add(string(AppendCommand(AppendCommand(nil, "PING"), "CALL", "app", "op", "x")))
	// Inline, mixed with multibulk on one stream.
	f.Add("PING\r\nSITE us-east\r\n*1\r\n$4\r\nINFO\r\n")
	// Bare keep-alive CRLFs and whitespace.
	f.Add("\r\n\r\nPING\r\n")
	// Truncated frames.
	f.Add("*2\r\n$4\r\nCALL\r\n")
	f.Add("*1\r\n$10\r\nshort\r\n")
	f.Add("$5\r\nhello\r\n")
	// Malformed headers.
	f.Add("*-1\r\n")
	f.Add("*abc\r\n")
	f.Add("*1\r\n$-2\r\n")
	// Binary payloads with embedded CR/LF.
	f.Add(string(AppendCommand(nil, "MOUNT", "spec x\r\nop y\x00\xff")))
	// Giant-looking lengths (must fail the cap, not allocate).
	f.Add("*1048577\r\n")
	f.Add("*1\r\n$83886081\r\n")

	f.Fuzz(func(t *testing.T, input string) {
		r := bufio.NewReader(strings.NewReader(input))
		var parsed [][]string
		for i := 0; i < 64; i++ {
			args, err := ParseCommand(r) // must never panic
			if err != nil {
				break
			}
			if args == nil {
				continue // empty inline line
			}
			parsed = append(parsed, args)
		}
		// Round-trip: canonical encoding of everything parsed must parse
		// back to the identical command list.
		var buf []byte
		for _, args := range parsed {
			buf = AppendCommand(buf, args...)
		}
		r2 := bufio.NewReader(bytes.NewReader(buf))
		for i, want := range parsed {
			got, err := ParseCommand(r2)
			if err != nil {
				t.Fatalf("re-parse command %d: %v", i, err)
			}
			if len(got) != len(want) {
				t.Fatalf("round-trip %d: %v != %v", i, got, want)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("round-trip %d arg %d: %q != %q", i, j, got[j], want[j])
				}
			}
		}
		if _, err := ParseCommand(r2); !errors.Is(err, io.EOF) {
			t.Fatalf("re-encoded stream must end cleanly, got %v", err)
		}
	})
}

// FuzzParseReply holds the reply parser to the no-panic guarantee.
func FuzzParseReply(f *testing.F) {
	f.Add("+OK\r\n")
	f.Add("-ERR nope\r\n")
	f.Add(":123\r\n")
	f.Add("$5\r\nhello\r\n")
	f.Add("$-1\r\n")
	f.Add("*2\r\n+a\r\n:1\r\n")
	f.Add("*-1\r\n")
	f.Add("*2\r\n*1\r\n+deep\r\n+b\r\n")
	f.Add("!weird\r\n")
	f.Fuzz(func(t *testing.T, input string) {
		r := bufio.NewReader(strings.NewReader(input))
		for i := 0; i < 64; i++ {
			if _, err := ParseReply(r); err != nil { // must never panic
				break
			}
		}
	})
}
