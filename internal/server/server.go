package server

import (
	"bufio"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ipa/internal/analysis"
	"ipa/internal/clock"
	"ipa/internal/engine"
	"ipa/internal/netrepl"
	"ipa/internal/runtime"
	"ipa/internal/spec"
	"ipa/internal/wan"
)

// Config tunes a Server. The zero value selects the defaults noted on
// each field.
type Config struct {
	// MaxWriteBuffer bounds the per-connection reply buffer. A pipelined
	// burst whose replies exceed it flushes to the socket mid-batch, so a
	// client that stops reading eventually blocks its own connection
	// (backpressure) instead of growing server memory. Default 256 KiB.
	MaxWriteBuffer int
	// DrainTimeout bounds how long Shutdown waits for in-flight commands
	// to finish before force-closing connections. Default 10s.
	DrainTimeout time.Duration
	// AnalysisOptions tunes the IPA analysis MOUNT runs on incoming
	// specifications.
	AnalysisOptions analysis.Options
}

func (c Config) withDefaults() Config {
	if c.MaxWriteBuffer <= 0 {
		c.MaxWriteBuffer = 256 << 10
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	return c
}

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	// ConnsAccepted / ConnsActive count client connections.
	ConnsAccepted, ConnsActive int64
	// Commands counts every executed command; Calls the CALL subset;
	// Refusals the CALLs that returned ErrPrecondition (guarded no-ops).
	Commands, Calls, Refusals int64
	// LoadSessions counts connected sessions that named themselves with
	// a "loadgen" prefix via CLIENT SETNAME — an operator checking INFO
	// during a load run sees how much of the connection count is the
	// load generator versus real clients.
	LoadSessions int64
}

// Server exposes a runtime.Cluster (either backend) over TCP with the
// RESP-style protocol. Mount applications, Start the listener, Shutdown
// to drain.
//
// Concurrency: on the netrepl backend connections execute commands
// concurrently — the sharded replica core is built for exactly that. The
// sim backend's discrete-event loop is single-threaded by design, so
// there the server serialises command execution (and pumps the event
// loop after each command so replication interleaves); sim serving is
// for tests and demos, netrepl is the deployable path.
type Server struct {
	cfg     Config
	cluster runtime.Cluster
	sites   []clock.ReplicaID
	sim     *wan.Sim   // non-nil on the sim backend
	execMu  sync.Mutex // serialises execution on the sim backend

	appsMu sync.RWMutex
	apps   map[string]*engine.App

	ln       net.Listener
	draining chan struct{}
	drainOne sync.Once
	wg       sync.WaitGroup // accept loop + connection handlers

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	accepted, active, commands, calls, refusals atomic.Int64
	loadSessions                                atomic.Int64
}

// New creates a server over an open cluster. The caller keeps ownership
// of the cluster: Shutdown drains the server's connections but does not
// close the cluster (the serve command settles replication and closes it
// after the drain — that ordering is what makes every acked CALL
// durable).
func New(cluster runtime.Cluster, cfg Config) *Server {
	s := &Server{
		cfg:      cfg.withDefaults(),
		cluster:  cluster,
		sites:    cluster.Replicas(),
		apps:     map[string]*engine.App{},
		draining: make(chan struct{}),
		conns:    map[net.Conn]struct{}{},
	}
	if sc, ok := cluster.(*runtime.SimCluster); ok {
		s.sim = sc.Store().Sim()
	}
	return s
}

// Mount parses a specification, runs the IPA analysis, compiles the
// result, and registers it under the spec's own name — the full loop of
// the paper, server-side. It is what the MOUNT command executes.
func (s *Server) Mount(src string) (string, error) {
	sp, err := spec.Parse(src)
	if err != nil {
		return "", err
	}
	res, err := analysis.Run(sp, s.cfg.AnalysisOptions)
	if err != nil {
		return "", err
	}
	return s.MountAnalyzed(sp, res)
}

// MountAnalyzed registers an already-analyzed specification (callers
// that record explicit repair choices, like the bundled applications).
func (s *Server) MountAnalyzed(orig *spec.Spec, res *analysis.Result) (string, error) {
	var eng *engine.App
	err := s.exec(func() error { // engine.Mount touches the cluster: serialise on sim
		var err error
		eng, err = engine.Mount(orig, res, s.cluster)
		return err
	})
	if err != nil {
		return "", err
	}
	name := eng.Spec().Name
	s.appsMu.Lock()
	defer s.appsMu.Unlock()
	if _, ok := s.apps[name]; ok {
		return "", fmt.Errorf("server: app %q already mounted", name)
	}
	s.apps[name] = eng
	return name, nil
}

// App returns a mounted application.
func (s *Server) App(name string) (*engine.App, bool) {
	s.appsMu.RLock()
	defer s.appsMu.RUnlock()
	a, ok := s.apps[name]
	return a, ok
}

// AppNames lists the mounted applications, sorted.
func (s *Server) AppNames() []string {
	s.appsMu.RLock()
	defer s.appsMu.RUnlock()
	names := make([]string, 0, len(s.apps))
	for n := range s.apps {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Start listens on addr and serves connections until Shutdown. It
// returns once the listener is bound; use Addr for the chosen port.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound listen address (after Start).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		ConnsAccepted: s.accepted.Load(),
		ConnsActive:   s.active.Load(),
		Commands:      s.commands.Load(),
		Calls:         s.calls.Load(),
		Refusals:      s.refusals.Load(),
		LoadSessions:  s.loadSessions.Load(),
	}
}

// Shutdown drains gracefully: stop accepting, let every connection
// finish the command it is executing (and flush the replies it has
// already earned), then close the connections. Nothing is acknowledged
// after the drain: a command acked before Shutdown returned was executed
// before it; commands still in flight on the wire are dropped un-acked
// and un-applied, which clients observe as a clean connection close.
// Safe to call more than once; later calls wait for the same drain.
func (s *Server) Shutdown() error {
	s.drainOne.Do(func() {
		close(s.draining)
		if s.ln != nil {
			s.ln.Close()
		}
		// Kick handlers parked in a blocking read: an expired read
		// deadline fails the pending Read, the handler sees the drain
		// flag, flushes what it owes, and exits. Handlers mid-execution
		// are untouched — they finish their command first.
		s.connMu.Lock()
		for c := range s.conns {
			c.SetReadDeadline(time.Now())
		}
		s.connMu.Unlock()
	})
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-time.After(s.cfg.DrainTimeout):
		// A handler is stuck (a command wedged against the backend).
		// Force-close its connection — the write path fails, nothing
		// more is acked — and wait for the teardown.
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		<-done
		return fmt.Errorf("server: drain timed out after %v; connections force-closed", s.cfg.DrainTimeout)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.draining:
				return
			default:
				if errors.Is(err, net.ErrClosed) {
					return
				}
				continue
			}
		}
		s.connMu.Lock()
		select {
		case <-s.draining:
			s.connMu.Unlock()
			conn.Close()
			return
		default:
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.connMu.Unlock()
		s.accepted.Add(1)
		s.active.Add(1)
		go s.handle(conn)
	}
}

// replyBufPool recycles per-connection reply buffers across the
// connection population — short-lived bench and client connections would
// otherwise pay a fresh write buffer each. maxPooledReply bounds what a
// returned buffer may retain.
const maxPooledReply = 64 << 10

var replyBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4<<10)
		return &b
	},
}

// session is one connection's state: the replica site its CALLs execute
// at, and the client-declared name (CLIENT SETNAME). The default site is
// sticky-by-client: a consistent hash of the client's host picks the
// site, so one client keeps hitting the same replica (session
// guarantees) while a client population spreads across sites. The SITE
// command pins it explicitly.
type session struct {
	site clock.ReplicaID
	name string
	// counted marks a session tallied in loadSessions, so the decrement
	// on disconnect (or rename) is exact.
	counted bool
}

// loadSessionPrefix is the CLIENT SETNAME prefix that counts a session
// as load-generator traffic in Stats and INFO.
const loadSessionPrefix = "loadgen"

// defaultSite consistent-hashes the client's host across the replicas.
func (s *Server) defaultSite(remote string) clock.ReplicaID {
	host := remote
	if h, _, err := net.SplitHostPort(remote); err == nil {
		host = h
	}
	f := fnv.New64a()
	f.Write([]byte(host))
	return s.sites[f.Sum64()%uint64(len(s.sites))]
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
		s.active.Add(-1)
	}()
	r := bufio.NewReaderSize(conn, 64<<10)
	bufp := replyBufPool.Get().(*[]byte)
	out := (*bufp)[:0]
	defer func() {
		// Keep steady-size buffers warm; let one-off giants (a pipelined
		// burst that grew toward MaxWriteBuffer) be collected instead of
		// pinning their memory in the pool.
		if cap(out) <= maxPooledReply {
			*bufp = out
			replyBufPool.Put(bufp)
		}
	}()
	sess := &session{site: s.defaultSite(conn.RemoteAddr().String())}
	defer func() {
		if sess.counted {
			s.loadSessions.Add(-1)
		}
	}()

	flush := func() bool {
		if len(out) == 0 {
			return true
		}
		_, err := conn.Write(out)
		out = out[:0]
		return err == nil
	}
	for {
		// Between commands: once draining, flush what this connection is
		// owed and close. Commands already executed have their replies in
		// out (or on the wire); commands not yet read are never acked.
		select {
		case <-s.draining:
			flush()
			return
		default:
		}
		args, err := ParseCommand(r)
		if err != nil {
			if errors.Is(err, ErrProtocol) {
				// Framing is lost; report and hang up.
				out = appendError(out, "ERR "+err.Error())
			}
			flush()
			return
		}
		if len(args) == 0 {
			continue // bare CRLF keep-alive
		}
		s.commands.Add(1)
		var quit bool
		out, quit = s.dispatch(sess, out, args)
		// Pipelining: batch replies while more input is already buffered,
		// flush at the batch boundary — but never hold more than the
		// write-buffer bound (backpressure on the client).
		if quit || r.Buffered() == 0 || len(out) >= s.cfg.MaxWriteBuffer {
			if !flush() || quit {
				return
			}
		}
	}
}

// dispatch executes one command and appends its reply to out.
func (s *Server) dispatch(sess *session, out []byte, args []string) ([]byte, bool) {
	switch strings.ToUpper(args[0]) {
	case "PING":
		if len(args) > 1 {
			return appendBulk(out, args[1]), false
		}
		return appendSimple(out, "PONG"), false

	case "QUIT":
		return appendSimple(out, "OK"), true

	case "SITE":
		if len(args) == 1 {
			return appendBulk(out, string(sess.site)), false
		}
		want := clock.ReplicaID(args[1])
		for _, id := range s.sites {
			if id == want {
				sess.site = want
				return appendSimple(out, "OK"), false
			}
		}
		return appendError(out, fmt.Sprintf("ERR unknown site %q (sites: %s)", args[1], joinSites(s.sites))), false

	case "CLIENT":
		if len(args) >= 2 && strings.EqualFold(args[1], "GETNAME") {
			return appendBulk(out, sess.name), false
		}
		if len(args) == 3 && strings.EqualFold(args[1], "SETNAME") {
			if sess.counted {
				s.loadSessions.Add(-1)
				sess.counted = false
			}
			sess.name = args[2]
			if strings.HasPrefix(sess.name, loadSessionPrefix) {
				s.loadSessions.Add(1)
				sess.counted = true
			}
			return appendSimple(out, "OK"), false
		}
		return appendError(out, "ERR usage: CLIENT SETNAME <name> | CLIENT GETNAME"), false

	case "APPS":
		return appendBulkArray(out, s.AppNames()), false

	case "OPS":
		if len(args) != 2 {
			return appendError(out, "ERR usage: OPS <app>"), false
		}
		app, ok := s.App(args[1])
		if !ok {
			return appendError(out, fmt.Sprintf("ERR app %q not mounted", args[1])), false
		}
		return appendBulkArray(out, app.Operations()), false

	case "MOUNT":
		if len(args) != 2 {
			return appendError(out, "ERR usage: MOUNT <spec-source>"), false
		}
		name, err := s.Mount(args[1])
		if err != nil {
			return appendError(out, "ERR mount: "+err.Error()), false
		}
		return appendBulk(out, name), false

	case "CALL":
		if len(args) < 3 {
			return appendError(out, "ERR usage: CALL <app> <op> [args...]"), false
		}
		app, ok := s.App(args[1])
		if !ok {
			return appendError(out, fmt.Sprintf("ERR app %q not mounted", args[1])), false
		}
		s.calls.Add(1)
		err := s.exec(func() error {
			return app.Call(s.cluster.Replica(sess.site), args[2], args[3:]...)
		})
		switch {
		case err == nil:
			return appendSimple(out, "OK"), false
		case errors.Is(err, engine.ErrPrecondition):
			// A guarded no-op, exactly like the hand-coded apps: the
			// distinct prefix lets clients treat it as an outcome, not a
			// failure.
			s.refusals.Add(1)
			return appendError(out, "PRECONDITION "+err.Error()), false
		default:
			return appendError(out, "ERR call: "+err.Error()), false
		}

	case "CHECK":
		apps := args[1:]
		if len(apps) == 0 {
			apps = s.AppNames()
		}
		var violations []string
		for _, name := range apps {
			app, ok := s.App(name)
			if !ok {
				return appendError(out, fmt.Sprintf("ERR app %q not mounted", name)), false
			}
			s.exec(func() error {
				for _, id := range s.sites {
					for _, v := range app.CheckInvariants(s.cluster.Replica(id)) {
						violations = append(violations, fmt.Sprintf("%s: %s: %s", name, id, v))
					}
				}
				return nil
			})
		}
		return appendBulkArray(out, violations), false

	case "DIGEST":
		if len(args) != 2 {
			return appendError(out, "ERR usage: DIGEST <app>"), false
		}
		app, ok := s.App(args[1])
		if !ok {
			return appendError(out, fmt.Sprintf("ERR app %q not mounted", args[1])), false
		}
		var digests []string
		s.exec(func() error {
			for _, id := range s.sites {
				digests = append(digests, fmt.Sprintf("%s %s", id, app.Digest(s.cluster.Replica(id))))
			}
			return nil
		})
		return appendBulkArray(out, digests), false

	case "REPAIR":
		apps := args[1:]
		if len(apps) == 0 {
			apps = s.AppNames()
		}
		for _, name := range apps {
			app, ok := s.App(name)
			if !ok {
				return appendError(out, fmt.Sprintf("ERR app %q not mounted", name)), false
			}
			s.exec(func() error {
				for _, id := range s.sites {
					app.Repair(s.cluster.Replica(id))
				}
				return nil
			})
		}
		return appendSimple(out, "OK"), false

	case "SETTLE":
		if err := s.exec(s.cluster.Settle); err != nil {
			return appendError(out, "ERR settle: "+err.Error()), false
		}
		return appendSimple(out, "OK"), false

	case "STABILIZE":
		s.exec(func() error { s.cluster.Stabilize(); return nil })
		return appendSimple(out, "OK"), false

	case "INFO":
		st := s.Stats()
		info := fmt.Sprintf(
			"backend:%s\r\nsites:%s\r\napps:%s\r\nconns_accepted:%d\r\nconns_active:%d\r\ncommands:%d\r\ncalls:%d\r\nrefusals:%d\r\nload_sessions:%d\r\n",
			s.cluster.Backend(), joinSites(s.sites), strings.Join(s.AppNames(), ","),
			st.ConnsAccepted, st.ConnsActive, st.Commands, st.Calls, st.Refusals, st.LoadSessions)
		// On the netrepl backend, surface the replication transport's
		// health counters — repl_txns_dropped in particular: a dropped
		// transaction opens a permanent causal gap that stalls receivers
		// (see DESIGN.md), and an operator should see it here rather
		// than in a node's process log.
		if nc, ok := s.cluster.(*runtime.NetCluster); ok {
			var agg netrepl.Metrics
			for _, id := range s.sites {
				m := nc.Node(id).Stats()
				agg.FramesSent += m.FramesSent
				agg.TxnsSent += m.TxnsSent
				agg.BytesSent += m.BytesSent
				agg.FramesRecv += m.FramesRecv
				agg.TxnsRecv += m.TxnsRecv
				agg.BytesRecv += m.BytesRecv
				agg.SendErrors += m.SendErrors
				agg.TxnsDropped += m.TxnsDropped
				agg.BackpressureWaits += m.BackpressureWaits
				agg.Reconnects += m.Reconnects
				agg.WALAppends += m.WALAppends
				agg.WALSyncs += m.WALSyncs
				agg.WALBytes += m.WALBytes
				agg.WALSegments += m.WALSegments
				agg.Snapshots += m.Snapshots
				agg.StalledOrigins += m.StalledOrigins
			}
			info += fmt.Sprintf(
				"repl_frames_sent:%d\r\nrepl_txns_sent:%d\r\nrepl_bytes_sent:%d\r\nrepl_frames_recv:%d\r\nrepl_txns_recv:%d\r\nrepl_bytes_recv:%d\r\nrepl_send_errors:%d\r\nrepl_txns_dropped:%d\r\nrepl_backpressure_waits:%d\r\nrepl_reconnects:%d\r\n",
				agg.FramesSent, agg.TxnsSent, agg.BytesSent,
				agg.FramesRecv, agg.TxnsRecv, agg.BytesRecv,
				agg.SendErrors, agg.TxnsDropped, agg.BackpressureWaits, agg.Reconnects)
			// Durability counters: repl_stalled_origins is the one to
			// alert on — a persistent stall means a causal gap that only
			// crash-recovery (state transfer from the WAL of a peer that
			// still has the record) will close. The WAL counters show
			// group commit working: appends well above syncs.
			info += fmt.Sprintf(
				"repl_wal_appends:%d\r\nrepl_wal_syncs:%d\r\nrepl_wal_bytes:%d\r\nrepl_wal_segments:%d\r\nrepl_snapshots:%d\r\nrepl_stalled_origins:%d\r\n",
				agg.WALAppends, agg.WALSyncs, agg.WALBytes,
				agg.WALSegments, agg.Snapshots, agg.StalledOrigins)
		}
		return appendBulk(out, info), false

	default:
		return appendError(out, fmt.Sprintf("ERR unknown command %q", args[0])), false
	}
}

// exec runs one backend-touching unit. The netrepl backend executes
// concurrently; the sim backend is single-threaded, so execution
// serialises and the event loop pumps after each unit (that is what
// delivers replication in virtual time).
func (s *Server) exec(fn func() error) error {
	if s.sim == nil {
		return fn()
	}
	s.execMu.Lock()
	defer s.execMu.Unlock()
	err := fn()
	s.sim.Run()
	return err
}

func joinSites(ids []clock.ReplicaID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = string(id)
	}
	return strings.Join(parts, ",")
}
