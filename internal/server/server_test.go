package server

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ipa/internal/apps/tournament"
	"ipa/internal/clock"
	"ipa/internal/runtime"
	"ipa/internal/store"
	"ipa/internal/wan"
)

func siteIDs() []clock.ReplicaID {
	var ids []clock.ReplicaID
	for _, s := range wan.Sites() {
		ids = append(ids, clock.ReplicaID(s))
	}
	return ids
}

// newTestCluster builds a 3-site cluster on the requested backend.
func newTestCluster(t *testing.T, backend string) runtime.Cluster {
	t.Helper()
	switch backend {
	case runtime.BackendSim:
		sim := wan.NewSim(1)
		return runtime.NewSimCluster(store.NewCluster(sim, wan.PaperTopology(), siteIDs()))
	case runtime.BackendNet:
		c, err := runtime.NewNetCluster(siteIDs(), runtime.NetConfig{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	default:
		t.Fatalf("unknown backend %q", backend)
		return nil
	}
}

// startServer boots a server with the tournament app mounted.
func startServer(t *testing.T, backend string) (*Server, string) {
	t.Helper()
	cluster := newTestCluster(t, backend)
	srv := New(cluster, Config{DrainTimeout: 30 * time.Second})
	if _, err := srv.MountAnalyzed(tournament.Spec(), tournament.Analysis()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Shutdown() })
	return srv, srv.Addr()
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// quiesceRemote runs the harness's quiescence protocol over the wire and
// fails the test on invariant violations or digest divergence.
func quiesceRemote(t *testing.T, c *Client, app string) {
	t.Helper()
	if err := c.DoOK("SETTLE"); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		if err := c.DoOK("REPAIR", app); err != nil {
			t.Fatal(err)
		}
		if err := c.DoOK("SETTLE"); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.DoOK("STABILIZE"); err != nil {
		t.Fatal(err)
	}
	rp, err := c.Do("CHECK", app)
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.Err(); err != nil {
		t.Fatal(err)
	}
	if v := rp.Strings(); len(v) > 0 {
		t.Fatalf("invariant violations: %v", v)
	}
	rp, err = c.Do("DIGEST", app)
	if err != nil {
		t.Fatal(err)
	}
	ds := rp.Strings()
	if len(ds) < 2 {
		t.Fatalf("DIGEST returned %v", ds)
	}
	strip := func(s string) string {
		_, rest, _ := strings.Cut(s, " ")
		return rest
	}
	for _, d := range ds[1:] {
		if strip(d) != strip(ds[0]) {
			t.Fatalf("replicas diverged:\n%s", strings.Join(ds, "\n"))
		}
	}
}

// callOK sends one CALL and accepts +OK or a PRECONDITION refusal.
func callOK(t *testing.T, c *Client, args ...string) {
	t.Helper()
	rp, err := c.Do(args...)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Kind == '-' && !strings.HasPrefix(rp.Str, "PRECONDITION") {
		t.Fatalf("%v: %s", args, rp.Str)
	}
}

func TestServeEndToEnd(t *testing.T) {
	for _, backend := range []string{runtime.BackendSim, runtime.BackendNet} {
		t.Run(backend, func(t *testing.T) {
			_, addr := startServer(t, backend)
			ctl := dialT(t, addr)

			// Basic command surface.
			if rp, err := ctl.Do("PING"); err != nil || rp.Str != "PONG" {
				t.Fatalf("PING = %+v, %v", rp, err)
			}
			if rp, err := ctl.Do("APPS"); err != nil || strings.Join(rp.Strings(), ",") != "tournament" {
				t.Fatalf("APPS = %+v, %v", rp, err)
			}
			rp, err := ctl.Do("OPS", "tournament")
			if err != nil || len(rp.Strings()) == 0 {
				t.Fatalf("OPS = %+v, %v", rp, err)
			}
			if rp, _ := ctl.Do("CALL", "tournament", "nosuch"); rp.Kind != '-' {
				t.Fatalf("unknown op must error, got %+v", rp)
			}
			if rp, _ := ctl.Do("NOSUCHCMD"); rp.Kind != '-' {
				t.Fatalf("unknown command must error, got %+v", rp)
			}

			// Site affinity: default is deterministic, SITE pins.
			rp, err = ctl.Do("SITE")
			if err != nil || rp.Str == "" {
				t.Fatalf("SITE = %+v, %v", rp, err)
			}
			if err := ctl.DoOK("SITE", wan.Sites()[1]); err != nil {
				t.Fatal(err)
			}
			if rp, _ := ctl.Do("SITE", "mars"); rp.Kind != '-' {
				t.Fatalf("bad site must error, got %+v", rp)
			}

			// Seed the domain.
			for i := 0; i < 6; i++ {
				callOK(t, ctl, "CALL", "tournament", "add_player", fmt.Sprintf("p%d", i))
			}
			callOK(t, ctl, "CALL", "tournament", "add_tourn", "t0")
			callOK(t, ctl, "CALL", "tournament", "begin_tourn", "t0")
			if err := ctl.DoOK("SETTLE"); err != nil {
				t.Fatal(err)
			}

			// Concurrent pipelined clients, each pinned to a site.
			var wg sync.WaitGroup
			errs := make([]error, 3)
			for w := 0; w < 3; w++ {
				c := dialT(t, addr)
				if err := c.DoOK("SITE", wan.Sites()[w%3]); err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(w int, c *Client) {
					defer wg.Done()
					const depth = 8
					for batch := 0; batch < 10; batch++ {
						for i := 0; i < depth; i++ {
							p := fmt.Sprintf("p%d", (batch+i)%6)
							switch i % 3 {
							case 0:
								c.Send("CALL", "tournament", "enroll", p, "t0")
							case 1:
								c.Send("CALL", "tournament", "do_match", p, fmt.Sprintf("p%d", (batch+i+1)%6), "t0")
							default:
								c.Send("CALL", "tournament", "disenroll", p, "t0")
							}
						}
						if err := c.Flush(); err != nil {
							errs[w] = err
							return
						}
						for i := 0; i < depth; i++ {
							rp, err := c.Recv()
							if err != nil {
								errs[w] = err
								return
							}
							if rp.Kind == '-' && !strings.HasPrefix(rp.Str, "PRECONDITION") {
								errs[w] = errors.New(rp.Str)
								return
							}
						}
					}
				}(w, c)
			}
			wg.Wait()
			for w, err := range errs {
				if err != nil {
					t.Fatalf("client %d: %v", w, err)
				}
			}

			// Kill a client mid-stream: write half a command and vanish.
			raw, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := raw.Write([]byte("*3\r\n$4\r\nCALL\r\n$10\r\ntourn")); err != nil {
				t.Fatal(err)
			}
			raw.Close()
			// A malformed frame gets an error reply, then a hangup.
			raw2, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := raw2.Write([]byte("*abc\r\n")); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 256)
			raw2.SetReadDeadline(time.Now().Add(5 * time.Second))
			n, _ := raw2.Read(buf)
			if n == 0 || buf[0] != '-' {
				t.Fatalf("malformed frame reply = %q", buf[:n])
			}
			raw2.Close()

			// Reconnect and keep working: the server survived both.
			c2 := dialT(t, addr)
			callOK(t, c2, "CALL", "tournament", "enroll", "p0", "t0")

			quiesceRemote(t, ctl, "tournament")
		})
	}
}

// TestServeInline drives the server exactly like a redis-cli-style tool:
// inline space-separated commands, one per line.
func TestServeInline(t *testing.T) {
	_, addr := startServer(t, runtime.BackendNet)
	c := dialT(t, addr)
	c.SendInline("PING")
	c.SendInline("CALL tournament add_player alice")
	c.SendInline("CALL tournament add_tourn cup")
	c.SendInline("CALL tournament enroll alice cup")
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []byte{'+', '+', '+', '+'} {
		rp, err := c.Recv()
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if rp.Kind != want {
			t.Fatalf("reply %d = %+v, want kind %q", i, rp, want)
		}
	}
	quiesceRemote(t, c, "tournament")
}

// TestServeMountOverWire mounts a fresh spec through the MOUNT command
// and calls it.
func TestServeMountOverWire(t *testing.T) {
	cluster := newTestCluster(t, runtime.BackendNet)
	srv := New(cluster, Config{})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	c := dialT(t, srv.Addr())

	src := "spec scratch\noperation put(Key: k) {\n    present(k) := true\n}\n"
	rp, err := c.Do("MOUNT", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.Err(); err != nil {
		t.Fatal(err)
	}
	if rp.Str != "scratch" {
		t.Fatalf("MOUNT = %+v", rp)
	}
	if rp, _ := c.Do("MOUNT", src); rp.Kind != '-' {
		t.Fatalf("double mount must error, got %+v", rp)
	}
	callOK(t, c, "CALL", "scratch", "put", "k1")
	if err := c.DoOK("SETTLE"); err != nil {
		t.Fatal(err)
	}
}

// TestServeGracefulShutdown is the acked-implies-applied test: clients
// hammer CALLs while the server shuts down mid-stream; afterwards every
// CALL that was acknowledged on the wire must be durably applied on
// every replica. Un-acked in-flight commands may be dropped — but
// nothing acked may be lost.
func TestServeGracefulShutdown(t *testing.T) {
	cluster := newTestCluster(t, runtime.BackendNet)
	srv := New(cluster, Config{DrainTimeout: 30 * time.Second})
	// A two-op probe spec: add(x) asserts p(x); probe(x) requires p(x).
	// An acked add that probe refuses afterwards was acked-but-lost.
	src := "spec acks\noperation add(Item: x) {\n    p(x) := true\n}\noperation probe(Item: x) {\n    requires p(x)\n    q(x) := true\n}\n"
	if _, err := srv.Mount(src); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	const clients = 4
	acked := make([][]string, clients)
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		c, err := Dial(addr, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.DoOK("SITE", wan.Sites()[w%3]); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w int, c *Client) {
			defer wg.Done()
			defer c.Close()
			// Pipelined in small batches so shutdown lands mid-pipeline
			// for some client: replies already read are acked; the rest
			// of the batch legitimately dies with the connection.
			const depth = 4
			for seq := 0; ; seq += depth {
				for i := 0; i < depth; i++ {
					c.Send("CALL", "acks", "add", fmt.Sprintf("c%d-%d", w, seq+i))
				}
				if err := c.Flush(); err != nil {
					return
				}
				for i := 0; i < depth; i++ {
					rp, err := c.Recv()
					if err != nil {
						return
					}
					if rp.Kind == '-' {
						return
					}
					acked[w] = append(acked[w], fmt.Sprintf("c%d-%d", w, seq+i))
				}
			}
		}(w, c)
	}

	// Let load build, then drain. Shutdown returns only after every
	// handler finished its in-flight command and flushed.
	time.Sleep(100 * time.Millisecond)
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// The drain contract continues: settle replication so every acked
	// (= executed) CALL is delivered at every site, then verify.
	if err := cluster.Settle(); err != nil {
		t.Fatal(err)
	}

	app, ok := srv.App("acks")
	if !ok {
		t.Fatal("app lost")
	}
	total := 0
	for w := range acked {
		total += len(acked[w])
	}
	if total == 0 {
		t.Fatal("no CALLs were acked before shutdown — the test raced to nothing")
	}
	for _, id := range cluster.Replicas() {
		r := cluster.Replica(id)
		for w := range acked {
			for _, x := range acked[w] {
				if err := app.Call(r, "probe", x); err != nil {
					t.Fatalf("acked add(%s) not applied at %s: %v", x, id, err)
				}
			}
		}
	}
	t.Logf("verified %d acked ops durably applied on %d replicas", total, len(cluster.Replicas()))

	// No lingering connections, and new ones are refused.
	if st := srv.Stats(); st.ConnsActive != 0 {
		t.Fatalf("%d connections still active after Shutdown", st.ConnsActive)
	}
	if c, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		c.Close()
		t.Fatal("listener still accepting after Shutdown")
	}
}

// TestServeBackpressure floods one connection with far more pipelined
// commands than the write buffer bounds: the server must neither grow
// its reply buffer unboundedly nor stall — it flushes mid-batch and the
// client eventually reads every reply.
func TestServeBackpressure(t *testing.T) {
	cluster := newTestCluster(t, runtime.BackendNet)
	srv := New(cluster, Config{MaxWriteBuffer: 4 << 10})
	if _, err := srv.MountAnalyzed(tournament.Spec(), tournament.Analysis()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	c := dialT(t, srv.Addr())

	const n = 3000
	for i := 0; i < n; i++ {
		c.Send("PING", fmt.Sprintf("%06d", i))
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rp, err := c.Recv()
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if rp.Str != fmt.Sprintf("%06d", i) {
			t.Fatalf("reply %d = %q: replies out of order", i, rp.Str)
		}
	}
}

// TestDefaultSiteDeterministic pins the consistent-hash site choice:
// same client host, same site.
func TestDefaultSiteDeterministic(t *testing.T) {
	cluster := newTestCluster(t, runtime.BackendSim)
	srv := New(cluster, Config{})
	a := srv.defaultSite("10.1.2.3:5555")
	b := srv.defaultSite("10.1.2.3:6666")
	if a != b {
		t.Fatalf("same host mapped to different sites: %s vs %s", a, b)
	}
	found := false
	for _, id := range cluster.Replicas() {
		if id == a {
			found = true
		}
	}
	if !found {
		t.Fatalf("site %s not in cluster", a)
	}
}

// TestInfoReplicationCounters pins the INFO surface for the replication
// transport on the netrepl backend: after real replicated traffic the
// aggregate counters must show frames on the wire and no dropped
// transactions (a nonzero repl_txns_dropped is an operator alarm — it
// means a permanent causal gap).
func TestInfoReplicationCounters(t *testing.T) {
	_, addr := startServer(t, runtime.BackendNet)
	ctl := dialT(t, addr)
	for i := 0; i < 5; i++ {
		callOK(t, ctl, "CALL", "tournament", "add_player", fmt.Sprintf("p%d", i))
	}
	if err := ctl.DoOK("SETTLE"); err != nil {
		t.Fatal(err)
	}
	rp, err := ctl.Do("INFO")
	if err != nil {
		t.Fatal(err)
	}
	info := map[string]string{}
	for _, line := range strings.Split(rp.Str, "\r\n") {
		if k, v, ok := strings.Cut(line, ":"); ok {
			info[k] = v
		}
	}
	for _, key := range []string{"repl_frames_sent", "repl_txns_sent", "repl_txns_recv", "repl_bytes_sent"} {
		if info[key] == "" || info[key] == "0" {
			t.Fatalf("INFO %s = %q, want nonzero after replicated traffic\nINFO:\n%s", key, info[key], rp.Str)
		}
	}
	for _, key := range []string{"repl_txns_dropped", "repl_send_errors"} {
		if info[key] != "0" {
			t.Fatalf("INFO %s = %q, want 0 on a healthy mesh\nINFO:\n%s", key, info[key], rp.Str)
		}
	}
}

func TestClientNameAndLoadSessions(t *testing.T) {
	srv, addr := startServer(t, runtime.BackendSim)
	c := dialT(t, addr)

	rp, err := c.Do("CLIENT", "GETNAME")
	if err != nil || rp.Err() != nil || rp.Str != "" {
		t.Fatalf("GETNAME before SETNAME = %q (%v %v), want empty", rp.Str, err, rp.Err())
	}
	if err := c.DoOK("CLIENT", "SETNAME", "loadgen-w0-c0"); err != nil {
		t.Fatal(err)
	}
	rp, err = c.Do("CLIENT", "GETNAME")
	if err != nil || rp.Str != "loadgen-w0-c0" {
		t.Fatalf("GETNAME = %q (%v), want loadgen-w0-c0", rp.Str, err)
	}
	if got := srv.Stats().LoadSessions; got != 1 {
		t.Fatalf("LoadSessions = %d after loadgen SETNAME, want 1", got)
	}
	rp, err = c.Do("INFO")
	if err != nil || !strings.Contains(rp.Str, "load_sessions:1\r\n") {
		t.Fatalf("INFO missing load_sessions:1 (%v):\n%s", err, rp.Str)
	}

	// Renaming away from the loadgen prefix un-counts the session.
	if err := c.DoOK("CLIENT", "SETNAME", "ops-probe"); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().LoadSessions; got != 0 {
		t.Fatalf("LoadSessions = %d after rename, want 0", got)
	}

	// Disconnect decrements: a crashed load generator must not leave
	// phantom sessions in the gauge.
	c2 := dialT(t, addr)
	if err := c2.DoOK("CLIENT", "SETNAME", "loadgen-w1-c0"); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().LoadSessions; got != 1 {
		t.Fatalf("LoadSessions = %d with second load conn, want 1", got)
	}
	c2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().LoadSessions != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("LoadSessions stuck at %d after disconnect", srv.Stats().LoadSessions)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Malformed CLIENT is an error reply, not a hangup.
	rp, err = c.Do("CLIENT")
	if err != nil || rp.Kind != '-' {
		t.Fatalf("bare CLIENT = kind %q (%v), want error reply", rp.Kind, err)
	}
	if err := c.DoOK("PING"); err == nil {
		t.Log("connection still serving after CLIENT usage error")
	} else {
		t.Fatalf("connection died after CLIENT usage error: %v", err)
	}
}
