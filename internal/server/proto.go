// Package server puts an ipa database behind a TCP front end with a
// compact RESP-compatible wire protocol, turning the repository from an
// embeddable library into a deployable system: the IPA paper's claim is
// invariant preservation for *replicated database applications* serving
// real clients, and this is the serving path.
//
// The protocol is the Redis serialization protocol's core subset, so
// `redis-cli`-style tools and standard load generators speak it for free:
//
//   - requests arrive either as multi-bulk arrays
//     (`*2\r\n$4\r\nCALL\r\n$4\r\nping\r\n`) or as inline commands —
//     one space-separated line (`PING\r\n`) — on the same connection,
//     interchangeably;
//   - replies use simple strings (`+OK`), errors (`-ERR ...`), integers
//     (`:1`), bulk strings (`$5\r\nhello`), and arrays (`*N`);
//   - clients may pipeline: the server executes commands in arrival
//     order and batches replies, flushing when the input drains.
//
// Commands (case-insensitive):
//
//	PING [msg]              liveness probe; +PONG or echoes msg
//	SITE [id]               get or pin the session's replica site
//	MOUNT <spec-src>        parse + analyze + mount a specification
//	CALL <app> <op> <args>  execute one operation at the session's site
//	CHECK [app]             invariant violations across all replicas
//	DIGEST <app>            per-replica state digests (convergence probe)
//	SETTLE                  block until replication has quiesced
//	STABILIZE               run one stability/compaction pass
//	APPS / OPS <app>        list mounted apps / an app's operations
//	INFO                    server counters
//	QUIT                    close the connection
//
// See DESIGN.md ("The serving layer") for the grammar, session and
// shutdown semantics.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Protocol hard limits: a malformed or hostile frame must fail parsing
// before it can make the server allocate absurd memory.
const (
	// maxArgs caps the elements of one multi-bulk command.
	maxArgs = 1 << 20
	// maxBulk caps one bulk string (spec sources arrive as one argument,
	// so this is generous).
	maxBulk = 8 << 20
	// maxInline caps one inline command line.
	maxInline = 64 << 10
)

// ErrProtocol tags malformed frames: the connection is unrecoverable
// (framing is lost) and should be closed after reporting the error.
var ErrProtocol = errors.New("protocol error")

func protoErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrProtocol, fmt.Sprintf(format, args...))
}

// ParseCommand reads one client command — multi-bulk or inline — from r.
// It returns (nil, nil) for an empty inline line (a bare CRLF keep-alive,
// as redis-cli sends); callers skip those. Errors are either io errors
// (connection gone, or io.ErrUnexpectedEOF for a truncated frame) or wrap
// ErrProtocol for malformed input. It never panics on any input.
func ParseCommand(r *bufio.Reader) ([]string, error) {
	first, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	if first != '*' {
		if err := r.UnreadByte(); err != nil {
			return nil, err
		}
		return parseInline(r)
	}
	n, err := readInt(r, "array header")
	if err != nil {
		return nil, err
	}
	if n < 0 || n > maxArgs {
		return nil, protoErrf("bad array length %d", n)
	}
	args := make([]string, 0, min(n, 64))
	for i := int64(0); i < n; i++ {
		b, err := r.ReadByte()
		if err != nil {
			return nil, unexpectedEOF(err)
		}
		if b != '$' {
			return nil, protoErrf("expected bulk string, got %q", b)
		}
		l, err := readInt(r, "bulk length")
		if err != nil {
			return nil, err
		}
		if l < 0 || l > maxBulk {
			return nil, protoErrf("bad bulk length %d", l)
		}
		buf := make([]byte, l+2)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, unexpectedEOF(err)
		}
		if buf[l] != '\r' || buf[l+1] != '\n' {
			return nil, protoErrf("bulk string missing CRLF terminator")
		}
		args = append(args, string(buf[:l]))
	}
	return args, nil
}

// parseInline reads one space-separated command line. No quoting: the
// commands that carry free-form payloads (MOUNT) need the multi-bulk
// form; inline exists so humans and redis-cli-style tools can poke the
// server.
func parseInline(r *bufio.Reader) ([]string, error) {
	line, err := readLine(r, maxInline, "inline command")
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil, nil // bare CRLF keep-alive
	}
	return fields, nil
}

// readLine reads up to CRLF (tolerating bare LF), enforcing a length cap.
func readLine(r *bufio.Reader, limit int, what string) (string, error) {
	var b strings.Builder
	for {
		chunk, err := r.ReadSlice('\n')
		b.Write(chunk)
		if err == nil {
			break
		}
		if err == bufio.ErrBufferFull {
			if b.Len() > limit {
				return "", protoErrf("%s exceeds %d bytes", what, limit)
			}
			continue
		}
		return "", unexpectedEOFIf(err, b.Len() > 0)
	}
	if b.Len() > limit {
		return "", protoErrf("%s exceeds %d bytes", what, limit)
	}
	line := strings.TrimSuffix(b.String(), "\n")
	return strings.TrimSuffix(line, "\r"), nil
}

// readInt reads a decimal integer terminated by CRLF (the `*N` / `$N`
// headers, with the marker byte already consumed).
func readInt(r *bufio.Reader, what string) (int64, error) {
	line, err := readLine(r, 32, what)
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(line, 10, 64)
	if err != nil {
		return 0, protoErrf("bad %s %q", what, line)
	}
	return n, nil
}

// unexpectedEOF maps a mid-frame EOF to io.ErrUnexpectedEOF so callers
// can tell a clean connection close (EOF at a command boundary) from a
// truncated frame.
func unexpectedEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

func unexpectedEOFIf(err error, started bool) error {
	if started {
		return unexpectedEOF(err)
	}
	return err
}

// --- Encoding -----------------------------------------------------------

// AppendCommand appends one command in multi-bulk form — the canonical
// client encoding (what ParseCommand round-trips exactly).
func AppendCommand(buf []byte, args ...string) []byte {
	buf = append(buf, '*')
	buf = strconv.AppendInt(buf, int64(len(args)), 10)
	buf = append(buf, '\r', '\n')
	for _, a := range args {
		buf = appendBulk(buf, a)
	}
	return buf
}

func appendBulk(buf []byte, s string) []byte {
	buf = append(buf, '$')
	buf = strconv.AppendInt(buf, int64(len(s)), 10)
	buf = append(buf, '\r', '\n')
	buf = append(buf, s...)
	return append(buf, '\r', '\n')
}

// sanitizeLine strips CR/LF from single-line reply payloads (simple
// strings and errors must not contain line breaks — they would corrupt
// the framing).
func sanitizeLine(s string) string {
	if !strings.ContainsAny(s, "\r\n") {
		return s
	}
	return strings.NewReplacer("\r", " ", "\n", " ").Replace(s)
}

func appendSimple(buf []byte, s string) []byte {
	buf = append(buf, '+')
	buf = append(buf, sanitizeLine(s)...)
	return append(buf, '\r', '\n')
}

func appendError(buf []byte, s string) []byte {
	buf = append(buf, '-')
	buf = append(buf, sanitizeLine(s)...)
	return append(buf, '\r', '\n')
}

func appendInt(buf []byte, n int64) []byte {
	buf = append(buf, ':')
	buf = strconv.AppendInt(buf, n, 10)
	return append(buf, '\r', '\n')
}

func appendArrayHeader(buf []byte, n int) []byte {
	buf = append(buf, '*')
	buf = strconv.AppendInt(buf, int64(n), 10)
	return append(buf, '\r', '\n')
}

func appendBulkArray(buf []byte, elems []string) []byte {
	buf = appendArrayHeader(buf, len(elems))
	for _, e := range elems {
		buf = appendBulk(buf, e)
	}
	return buf
}

// --- Replies (client side) ---------------------------------------------

// Reply is one parsed server reply.
type Reply struct {
	// Kind is the RESP type marker: '+' simple, '-' error, ':' integer,
	// '$' bulk, '*' array.
	Kind byte
	// Str holds the payload of simple strings, errors, and bulk strings.
	Str string
	// Int holds the payload of integer replies.
	Int int64
	// Elems holds the elements of array replies.
	Elems []Reply
	// Null marks a null bulk ($-1) or null array (*-1).
	Null bool
}

// Err returns the reply as an error when it is an error reply.
func (rp Reply) Err() error {
	if rp.Kind == '-' {
		return errors.New(rp.Str)
	}
	return nil
}

// Strings flattens an array reply into its bulk/simple payloads.
func (rp Reply) Strings() []string {
	out := make([]string, 0, len(rp.Elems))
	for _, e := range rp.Elems {
		out = append(out, e.Str)
	}
	return out
}

// ParseReply reads one reply from r. Like ParseCommand it never panics;
// malformed replies wrap ErrProtocol.
func ParseReply(r *bufio.Reader) (Reply, error) {
	kind, err := r.ReadByte()
	if err != nil {
		return Reply{}, err
	}
	switch kind {
	case '+', '-':
		line, err := readLine(r, maxInline, "reply line")
		if err != nil {
			return Reply{}, err
		}
		return Reply{Kind: kind, Str: line}, nil
	case ':':
		n, err := readInt(r, "integer reply")
		if err != nil {
			return Reply{}, err
		}
		return Reply{Kind: kind, Int: n}, nil
	case '$':
		l, err := readInt(r, "bulk length")
		if err != nil {
			return Reply{}, err
		}
		if l == -1 {
			return Reply{Kind: kind, Null: true}, nil
		}
		if l < 0 || l > maxBulk {
			return Reply{}, protoErrf("bad bulk length %d", l)
		}
		buf := make([]byte, l+2)
		if _, err := io.ReadFull(r, buf); err != nil {
			return Reply{}, unexpectedEOF(err)
		}
		if buf[l] != '\r' || buf[l+1] != '\n' {
			return Reply{}, protoErrf("bulk reply missing CRLF terminator")
		}
		return Reply{Kind: kind, Str: string(buf[:l])}, nil
	case '*':
		n, err := readInt(r, "array header")
		if err != nil {
			return Reply{}, err
		}
		if n == -1 {
			return Reply{Kind: kind, Null: true}, nil
		}
		if n < 0 || n > maxArgs {
			return Reply{}, protoErrf("bad array length %d", n)
		}
		elems := make([]Reply, 0, min(n, 64))
		for i := int64(0); i < n; i++ {
			e, err := ParseReply(r)
			if err != nil {
				return Reply{}, unexpectedEOF(err)
			}
			elems = append(elems, e)
		}
		return Reply{Kind: kind, Elems: elems}, nil
	default:
		return Reply{}, protoErrf("bad reply type %q", kind)
	}
}
