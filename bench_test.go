// Benchmarks regenerating the paper's evaluation (one per table/figure),
// plus engineering micro-benchmarks of the substrate. The figure
// benchmarks drive the deterministic WAN simulation and report the
// headline measures via b.ReportMetric (simulated milliseconds and TP/s);
// ns/op for those reflects harness wall time, not system latency.
//
// Run everything:
//
//	go test -bench=. -benchmem ./...
package ipa

import (
	"fmt"
	"testing"

	"ipa/internal/analysis"
	"ipa/internal/bench"
	"ipa/internal/clock"
	"ipa/internal/crdt"
	"ipa/internal/sat"
	"ipa/internal/smt"
	"ipa/internal/spec"
	"ipa/internal/store"
	"ipa/internal/wan"
)

func benchOpts() bench.ExpOptions {
	o := bench.QuickExpOptions()
	o.Duration = 5 * wan.Second
	return o
}

// BenchmarkTable1Classification regenerates Table 1: invariant classes
// per application and how IPA supports them.
func BenchmarkTable1Classification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, err := bench.Table1(analysis.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + e.Render())
		}
	}
}

// BenchmarkFig4PeakThroughput regenerates Fig. 4: Tournament latency vs
// throughput for Strong/Indigo/IPA/Causal.
func BenchmarkFig4PeakThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := bench.Fig4(benchOpts())
		if i == 0 {
			b.Log("\n" + e.Render())
			for _, s := range e.Series {
				last := s.Points[len(s.Points)-1]
				b.ReportMetric(last.X, "peakTP/s:"+s.Name)
				b.ReportMetric(s.Points[0].Y, "ms:"+s.Name)
			}
		}
	}
}

// BenchmarkFig5OperationLatency regenerates Fig. 5: per-operation latency
// in Tournament for Indigo/IPA/Causal.
func BenchmarkFig5OperationLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := bench.Fig5(benchOpts())
		if i == 0 {
			b.Log("\n" + e.Render())
		}
	}
}

// BenchmarkFig6TwitterStrategies regenerates Fig. 6: per-operation
// latency in Twitter for Causal/Add-Wins/Rem-Wins.
func BenchmarkFig6TwitterStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := bench.Fig6(benchOpts())
		if i == 0 {
			b.Log("\n" + e.Render())
		}
	}
}

// BenchmarkFig7TicketCompensations regenerates Fig. 7: Ticket latency vs
// throughput with the invariant-violation counts.
func BenchmarkFig7TicketCompensations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := bench.Fig7(benchOpts())
		if i == 0 {
			b.Log("\n" + e.Render())
			if s, ok := e.FindSeries("Causal"); ok {
				b.ReportMetric(s.Points[len(s.Points)-1].Aux["violations"], "violations:Causal")
			}
		}
	}
}

// BenchmarkFig8SingleObject regenerates Fig. 8 (top): speed-up IPA/Strong
// vs number of updates on a single key.
func BenchmarkFig8SingleObject(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := bench.Fig8a(benchOpts())
		if i == 0 {
			b.Log("\n" + e.Render())
			b.ReportMetric(e.Series[0].Points[0].Y, "speedup@1")
		}
	}
}

// BenchmarkFig8MultiObject regenerates Fig. 8 (bottom): speed-up
// IPA/Strong vs number of updated keys.
func BenchmarkFig8MultiObject(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := bench.Fig8b(benchOpts())
		if i == 0 {
			b.Log("\n" + e.Render())
			last := e.Series[0].Points[len(e.Series[0].Points)-1]
			b.ReportMetric(last.Y, fmt.Sprintf("speedup@%d", int(last.X)))
		}
	}
}

// BenchmarkFig9ReservationContention regenerates Fig. 9: latency vs
// reservation contention, IPA vs Indigo.
func BenchmarkFig9ReservationContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := bench.Fig9(benchOpts())
		if i == 0 {
			b.Log("\n" + e.Render())
		}
	}
}

// --- Engineering micro-benchmarks (real wall-clock ns/op) --------------

func BenchmarkAWSetAdd(b *testing.B) {
	s := crdt.NewAWSet()
	vc := clock.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tag := vc.Tick("r")
		s.Apply(s.PrepareAdd(fmt.Sprintf("e%d", i%1024), "", tag))
	}
}

func BenchmarkRWSetAddRemove(b *testing.B) {
	// Churn with periodic stability compaction, as a deployment would run
	// it — without GC the observed-remove metadata grows quadratically.
	s := crdt.NewRWSet()
	vc := clock.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := fmt.Sprintf("e%d", i%256)
		if i%3 == 0 {
			s.Apply(s.PrepareRemove(e, vc.Tick("r")))
		} else {
			s.Apply(s.PrepareAdd(e, "", vc.Tick("r")))
		}
		if i%4096 == 4095 {
			s.Compact(vc.Clone())
		}
	}
}

func BenchmarkStoreCommitReplicate(b *testing.B) {
	sim := wan.NewSim(1)
	c := store.NewCluster(sim, wan.PaperTopology(), []clock.ReplicaID{wan.USEast, wan.USWest, wan.EUWest})
	east := c.Replica(wan.USEast)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := east.Begin()
		store.AWSetAt(tx, "k").Add(fmt.Sprintf("e%d", i%512), "")
		tx.Commit()
		if i%64 == 0 {
			sim.Run() // drain replication
		}
	}
	sim.Run()
}

func BenchmarkSATPigeonhole(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sat.New()
		const n = 5 // PHP(5): UNSAT, forces real search
		p := make([][]int, n+1)
		for x := 0; x <= n; x++ {
			p[x] = make([]int, n)
			for y := 0; y < n; y++ {
				p[x][y] = s.NewVar()
			}
			s.AddClause(p[x]...)
		}
		for y := 0; y < n; y++ {
			for x := 0; x <= n; x++ {
				for z := x + 1; z <= n; z++ {
					s.AddClause(-p[x][y], -p[z][y])
				}
			}
		}
		if s.Solve() {
			b.Fatal("PHP must be UNSAT")
		}
	}
}

func BenchmarkConflictDetectionPair(b *testing.B) {
	src := `
spec bench
invariant forall (Player: p, Tournament: t) :- enrolled(p, t) => player(p) and tournament(t)
operation rem_tourn(Tournament: t) {
    tournament(t) := false
}
operation enroll(Player: p, Tournament: t) {
    enrolled(p, t) := true
}
`
	s := spec.MustParse(src)
	rem, _ := s.Operation("rem_tourn")
	enr, _ := s.Operation("enroll")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := analysis.IsConflicting(s, rem, enr, analysis.Options{}, nil)
		if err != nil || c == nil {
			b.Fatal("conflict expected")
		}
	}
}

func BenchmarkAnalysisFullTournament(b *testing.B) {
	s := spec.MustParse(`
spec t
invariant forall (Player: p, Tournament: t) :- enrolled(p, t) => player(p) and tournament(t)
operation add_player(Player: p) {
    player(p) := true
}
operation rem_tourn(Tournament: t) {
    tournament(t) := false
}
operation enroll(Player: p, Tournament: t) {
    enrolled(p, t) := true
}
`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := analysis.Run(s, analysis.Options{})
		if err != nil || len(res.Unsolved) != 0 {
			b.Fatalf("analysis failed: %v", err)
		}
	}
}

func BenchmarkSMTGroundEncode(b *testing.B) {
	inv := spec.MustParse(`
spec t
invariant forall (Player: p, q, Tournament: t) :- inMatch(p, q, t) => enrolled(p, t) and enrolled(q, t)
operation noop(Player: p) {
    player(p) := true
}
`).Invariant()
	sig := smt.Signature{
		"inMatch":  {"Player", "Player", "Tournament"},
		"enrolled": {"Player", "Tournament"},
		"player":   {"Player"},
	}
	dom := smt.Domain{"Player": {"P1", "P2", "P3"}, "Tournament": {"T1", "T2"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := smt.NewEncoder(dom, sig)
		st := enc.NewState("s")
		if err := enc.Assert(inv, st); err != nil {
			b.Fatal(err)
		}
		if !enc.Solve() {
			b.Fatal("must be satisfiable")
		}
	}
}
