package ipa_test

import (
	"fmt"

	"ipa"
)

// ExampleAnalyze runs the IPA analysis on the paper's core conflict: an
// enrolment concurrent with the tournament's removal.
func ExampleAnalyze() {
	s := ipa.MustParseSpec(`
spec example

invariant forall (Player: p, Tournament: t) :- enrolled(p, t) => player(p) and tournament(t)

operation add_player(Player: p) {
    player(p) := true
}
operation add_tourn(Tournament: t) {
    tournament(t) := true
}
operation rem_tourn(Tournament: t) {
    tournament(t) := false
}
operation enroll(Player: p, Tournament: t) {
    enrolled(p, t) := true
}
`)
	res, err := ipa.Analyze(s, ipa.AnalysisOptions{})
	if err != nil {
		panic(err)
	}
	for _, a := range res.Applied {
		fmt.Println(a.Repair)
	}
	fmt.Println("unsolved:", len(res.Unsolved))
	// Output:
	// add to enroll: tournament(t) := true (rules: tournament add-wins)
	// unsolved: 0
}

// ExampleFindConflicts detects the non-I-confluent pair and prints its
// violated invariant clause.
func ExampleFindConflicts() {
	s := ipa.MustParseSpec(`
spec example

invariant forall (Item: i) :- stock(i) >= 0

operation buy(Item: i) {
    stock(i) -= 1
}
`)
	conflicts, err := ipa.FindConflicts(s, ipa.AnalysisOptions{})
	if err != nil {
		panic(err)
	}
	for _, c := range conflicts {
		fmt.Printf("%s ∥ %s violates %s\n", c.Op1.Name, c.Op2.Name, c.ViolatedClauses[0])
	}
	// Output:
	// buy ∥ buy violates forall (Item: i) :- stock(i) >= 0
}

// ExampleNewPaperCluster shows the runtime: an add-wins touch restoring a
// concurrently removed tournament at every replica.
func ExampleNewPaperCluster() {
	sim, cluster := ipa.NewPaperCluster(1)
	sites := ipa.PaperSites()
	east, west := cluster.Replica(sites[0]), cluster.Replica(sites[1])

	seed := east.Begin()
	ipa.AWSetAt(seed, "tournaments").Add("cup", "")
	seed.Commit()
	sim.Run()

	rm := east.Begin()
	ipa.AWSetAt(rm, "tournaments").Remove("cup")
	rm.Commit()
	touch := west.Begin()
	ipa.AWSetAt(touch, "tournaments").Touch("cup")
	touch.Commit()
	sim.Run()

	tx := cluster.Replica(sites[2]).Begin()
	fmt.Println("cup exists:", ipa.AWSetAt(tx, "tournaments").Contains("cup"))
	tx.Commit()
	// Output:
	// cup exists: true
}
