// Twitter example: the two IPA strategies for the retweet-vs-delete
// conflict (paper §5.1.2, Fig. 6).
//
//   - Add-wins: the retweet touches the original tweet, so a concurrent
//     delete is undone — the tweet is recovered.
//   - Rem-wins: the delete wins; dangling timeline entries are hidden and
//     cleaned up lazily when a timeline is read (a compensation).
//
// go run ./examples/twitter
package main

import (
	"fmt"

	"ipa"
)

const (
	keyTweets = "tweets"
	timelines = "timeline/"
)

func seed(sim *ipa.Sim, cluster ipa.Cluster) {
	tx := cluster.Replica(ipa.PaperSites()[0]).Begin()
	ipa.AWSetAt(tx, keyTweets).Add("tw1", "hello world")
	ipa.AWSetAt(tx, timelines+"bob").Add("tw1", "")
	tx.Commit()
	sim.Run()
}

func addWinsScenario() {
	sim, cluster := ipa.NewPaperCluster(1)
	east := cluster.Replica(ipa.PaperSites()[0])
	west := cluster.Replica(ipa.PaperSites()[1])
	seed(sim, cluster)

	// Concurrently: east deletes tw1; west retweets it to carol.
	del := east.Begin()
	ipa.AWSetAt(del, keyTweets).Remove("tw1")
	del.Commit()

	rt := west.Begin()
	ipa.AWSetAt(rt, timelines+"carol").Add("tw1", "")
	ipa.AWSetAt(rt, keyTweets).Touch("tw1") // add-wins: recover the tweet
	rt.Commit()
	sim.Run()

	tx := cluster.Replica(ipa.PaperSites()[2]).Begin()
	text, ok := ipa.AWSetAt(tx, keyTweets).Payload("tw1")
	carol := ipa.AWSetAt(tx, timelines+"carol").Contains("tw1")
	tx.Commit()
	fmt.Printf("add-wins: tweet recovered=%v (text %q), carol sees it=%v\n", ok, text, carol)
}

func remWinsScenario() {
	sim, cluster := ipa.NewPaperCluster(2)
	east := cluster.Replica(ipa.PaperSites()[0])
	west := cluster.Replica(ipa.PaperSites()[1])
	seed(sim, cluster)

	del := east.Begin()
	ipa.AWSetAt(del, keyTweets).Remove("tw1")
	del.Commit()

	rt := west.Begin()
	ipa.AWSetAt(rt, timelines+"carol").Add("tw1", "")
	rt.Commit() // no touch: the delete is allowed to win
	sim.Run()

	// Reading carol's timeline compensates: dangling entries are hidden
	// and removed, and the cleanup replicates with the reading txn.
	eu := cluster.Replica(ipa.PaperSites()[2])
	read := eu.Begin()
	tl := ipa.AWSetAt(read, timelines+"carol")
	tweets := ipa.AWSetAt(read, keyTweets)
	var visible []string
	for _, id := range tl.Elems() {
		if tweets.Contains(id) {
			visible = append(visible, id)
		} else {
			tl.Remove(id) // compensation
		}
	}
	read.Commit()
	sim.Run()

	tx := west.Begin()
	left := ipa.AWSetAt(tx, timelines+"carol").Elems()
	tx.Commit()
	fmt.Printf("rem-wins: visible timeline=%v, entries after compensation replicated=%v\n", visible, left)
}

func main() {
	fmt.Println("retweet concurrent with delete, resolved both ways:")
	addWinsScenario()
	remWinsScenario()
}
