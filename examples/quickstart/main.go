// Quickstart: one specification file in, an invariant-preserving
// replicated application out.
//
// ipa.Open starts a replicated database (a deterministic three-site
// simulation here; pass Backend: ipa.BackendNet for real TCP sockets —
// same API). db.Mount runs the whole IPA loop on the spec — parse,
// conflict detection, repair synthesis — and compiles the patched
// result into a generic executor: every operation below runs as one
// highly available transaction with the analysis' extra effects
// attached, and the invariants are checked by evaluating the spec's own
// logic against the live state.
//
//	go run ./examples/quickstart
package main

import (
	_ "embed"
	"errors"
	"fmt"
	"log"

	"ipa"
)

//go:embed quickstart.spec
var specSource string

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	db, err := ipa.Open(ipa.ClusterOptions{Seed: 1})
	must(err)
	defer db.Close()

	// Mount: parse → analyze → executable application.
	app, err := db.Mount(specSource)
	must(err)
	fmt.Print(app.Analysis().Summary())
	fmt.Println()

	sites := db.Replicas()
	east, west := app.At(sites[0]), app.At(sites[1])

	must(east.Call("add_player", "alice"))
	must(east.Call("add_tourn", "cup"))
	must(db.Settle())

	// Preconditions are enforced at the origin: enrolling an unknown
	// player is a guarded no-op.
	if err := west.Call("enroll", "zoe", "cup"); errors.Is(err, ipa.ErrPrecondition) {
		fmt.Println("enroll(zoe, cup) refused:", err)
	}

	// The paper's headline race, executed straight from the spec: east
	// removes the tournament while west concurrently enrols alice — the
	// analysis-injected add-wins touch restores the tournament so the
	// invariant holds at every replica.
	must(east.Call("rem_tourn", "cup"))
	must(west.Call("enroll", "alice", "cup"))
	must(db.Settle())

	fmt.Println("\nafter concurrent rem_tourn ∥ enroll (analyzed spec, executed generically):")
	for _, id := range sites {
		fmt.Printf("  %-8s %s\n", id, app.Digest(id))
	}
	if v := app.CheckInvariants(); len(v) > 0 {
		log.Fatalf("invariant violations: %v", v)
	}
	fmt.Println("\ninvariants hold at every replica — the patched spec IS the application")
}
