// Quickstart: analyse a small specification with IPA, then watch the
// proposed repair preserve an invariant at runtime on the replicated
// store.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ipa"
)

const appSpec = `
spec quickstart

invariant forall (Player: p, Tournament: t) :- enrolled(p, t) => player(p) and tournament(t)

operation add_player(Player: p) {
    player(p) := true
}
operation add_tourn(Tournament: t) {
    tournament(t) := true
}
operation rem_tourn(Tournament: t) {
    tournament(t) := false
}
operation enroll(Player: p, Tournament: t) {
    enrolled(p, t) := true
}
`

func main() {
	// --- Static analysis -------------------------------------------------
	s, err := ipa.ParseSpec(appSpec)
	if err != nil {
		log.Fatal(err)
	}
	conflicts, err := ipa.FindConflicts(s, ipa.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("conflicts in the original application:")
	for _, c := range conflicts {
		fmt.Printf("  %s\n", c)
	}

	res, err := ipa.Analyze(s, ipa.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Summary())

	// --- Runtime ----------------------------------------------------------
	// The repair (enroll additionally touches the tournament, with an
	// add-wins rule) in action: a tournament removal concurrent with an
	// enrolment no longer leaves a dangling enrolment.
	sim, cluster := ipa.NewPaperCluster(1)
	sites := ipa.PaperSites()
	east, west := cluster.Replica(sites[0]), cluster.Replica(sites[1])

	seed := east.Begin()
	ipa.AWSetAt(seed, "players").Add("alice", "")
	ipa.AWSetAt(seed, "tournaments").Add("cup", "prize: 100")
	seed.Commit()
	sim.Run()

	// Concurrently: east removes the tournament, west enrols alice —
	// running the PATCHED enroll, which touches the tournament.
	tx1 := east.Begin()
	ipa.AWSetAt(tx1, "tournaments").Remove("cup")
	tx1.Commit()

	tx2 := west.Begin()
	ipa.AWSetAt(tx2, "enrolled").Add("alice|cup", "")
	ipa.AWSetAt(tx2, "tournaments").Touch("cup") // the IPA repair
	tx2.Commit()

	sim.Run() // replicate everything everywhere

	fmt.Println("\nafter concurrent rem_tourn ∥ enroll (patched):")
	for _, id := range sites {
		tx := cluster.Replica(id).Begin()
		tourns := ipa.AWSetAt(tx, "tournaments")
		enrolled := ipa.AWSetAt(tx, "enrolled")
		payload, _ := tourns.Payload("cup")
		fmt.Printf("  %-8s tournament exists=%v (payload %q), enrolment=%v\n",
			id, tourns.Contains("cup"), payload, enrolled.Contains("alice|cup"))
		tx.Commit()
	}
	fmt.Println("\nthe add-wins touch restored the tournament: the invariant holds at every replica")
}
