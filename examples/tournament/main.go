// Tournament example: the paper's running application, comparing the
// unmodified (Causal) variant against the IPA-patched one under a
// conflict-heavy concurrent workload — including a network partition, to
// show that the patched application stays available and still converges
// to an invariant-preserving state.
//
//	go run ./examples/tournament
package main

import (
	"fmt"
	"math/rand"

	"ipa"
)

// The data model follows the paper: add-wins sets for players,
// tournaments, enrolments and the finished flag; a rem-wins set for the
// active flag so that finish defeats a concurrent begin.
const (
	keyPlayers  = "players"
	keyTourns   = "tournaments"
	keyEnrolled = "enrolled"
	keyActive   = "active"
	keyFinished = "finished"
)

type app struct{ patched bool }

func (a app) enroll(r ipa.Replica, p, t string) {
	tx := r.Begin()
	ipa.AWSetAt(tx, keyEnrolled).Add(p+"|"+t, "")
	if a.patched { // ensureEnroll (paper Fig. 3)
		ipa.AWSetAt(tx, keyTourns).Touch(t)
		ipa.AWSetAt(tx, keyPlayers).Touch(p)
	}
	tx.Commit()
}

func (a app) remTournament(r ipa.Replica, t string) {
	tx := r.Begin()
	// Precondition (checked at the origin, as in the paper's model): the
	// tournament is unused locally. Conflicts then only arise from
	// concurrent operations at other replicas.
	unused := true
	for _, e := range ipa.AWSetAt(tx, keyEnrolled).Elems() {
		if len(e) > len(t) && e[len(e)-len(t):] == t {
			unused = false
			break
		}
	}
	if unused && !ipa.RWSetAt(tx, keyActive).Contains(t) {
		ipa.AWSetAt(tx, keyFinished).Remove(t)
		ipa.AWSetAt(tx, keyTourns).Remove(t)
	}
	tx.Commit()
}

func (a app) begin(r ipa.Replica, t string) {
	tx := r.Begin()
	ipa.RWSetAt(tx, keyActive).Add(t, "")
	if a.patched {
		ipa.AWSetAt(tx, keyTourns).Touch(t)
	}
	tx.Commit()
}

func (a app) finish(r ipa.Replica, t string) {
	tx := r.Begin()
	ipa.AWSetAt(tx, keyFinished).Add(t, "")
	ipa.RWSetAt(tx, keyActive).Remove(t) // rem-wins: finish defeats begin
	if a.patched {
		ipa.AWSetAt(tx, keyTourns).Touch(t)
	}
	tx.Commit()
}

// violations counts invariant violations visible at one replica.
func violations(r ipa.Replica) int {
	tx := r.Begin()
	defer tx.Commit()
	players := ipa.AWSetAt(tx, keyPlayers)
	tourns := ipa.AWSetAt(tx, keyTourns)
	active := ipa.RWSetAt(tx, keyActive)
	finished := ipa.AWSetAt(tx, keyFinished)
	n := 0
	for _, e := range ipa.AWSetAt(tx, keyEnrolled).Elems() {
		var p, t string
		for i := 0; i < len(e); i++ {
			if e[i] == '|' {
				p, t = e[:i], e[i+1:]
				break
			}
		}
		if !players.Contains(p) || !tourns.Contains(t) {
			n++
		}
	}
	for _, t := range active.Elems() {
		if finished.Contains(t) || !tourns.Contains(t) {
			n++
		}
	}
	return n
}

func run(patched bool) {
	sim, cluster := ipa.NewPaperCluster(99)
	sites := ipa.PaperSites()
	a := app{patched: patched}

	// Seed players and tournaments everywhere.
	seed := cluster.Replica(sites[0]).Begin()
	for i := 0; i < 20; i++ {
		ipa.AWSetAt(seed, keyPlayers).Add(fmt.Sprintf("p%02d", i), "")
	}
	for i := 0; i < 5; i++ {
		ipa.AWSetAt(seed, keyTourns).Add(fmt.Sprintf("t%d", i), "")
	}
	seed.Commit()
	sim.Run()

	// Partition eu-west away: it keeps serving its clients regardless.
	cluster.(ipa.Faults).SetPartitioned(sites[0], sites[2], true)
	cluster.(ipa.Faults).SetPartitioned(sites[1], sites[2], true)

	// Conflict-heavy concurrent workload from all three sites.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		site := sites[rng.Intn(len(sites))]
		r := cluster.Replica(site)
		p := fmt.Sprintf("p%02d", rng.Intn(20))
		t := fmt.Sprintf("t%d", rng.Intn(5))
		switch rng.Intn(10) {
		case 0:
			a.remTournament(r, t)
		case 1, 2:
			a.begin(r, t)
		case 3:
			a.finish(r, t)
		default:
			a.enroll(r, p, t)
		}
		sim.RunUntil(sim.Now() + 5000) // 5ms between ops
	}

	// Heal the partition and let everything converge.
	cluster.(ipa.Faults).SetPartitioned(sites[0], sites[2], false)
	cluster.(ipa.Faults).SetPartitioned(sites[1], sites[2], false)
	sim.Run()

	name := "causal (unmodified)"
	if patched {
		name = "IPA (patched)    "
	}
	for _, id := range sites {
		fmt.Printf("  %s  replica %-8s violations: %d\n", name, id, violations(cluster.Replica(id)))
	}
}

func main() {
	fmt.Println("tournament under a concurrent, partitioned workload:")
	run(false)
	run(true)
	fmt.Println("\nthe patched application converges with zero violations — without any coordination")
}
