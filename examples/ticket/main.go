// Ticket example: the Compensation Set CRDT in action (paper §4.2.2 and
// the Ticket application of §5.1.2). Two data centers concurrently sell
// the last ticket of an event; the aggregation constraint (no
// overselling) cannot be preserved up front under weak consistency, so
// the compensation cancels the excess ticket when the violation is
// observed, deterministically, at every replica.
//
//	go run ./examples/ticket
package main

import (
	"fmt"

	"ipa"
)

func main() {
	sim, cluster := ipa.NewPaperCluster(5)
	sites := ipa.PaperSites()

	// The event sells at most 2 tickets; the bound lives in the object,
	// so every replica seeds it before the sale opens.
	const capacity = 2
	for _, id := range sites {
		ipa.SeedCompSet(cluster.Replica(id), "event/gig", capacity)
	}

	// One ticket sold and fully replicated.
	tx := cluster.Replica(sites[0]).Begin()
	ipa.CompSetAt(tx, "event/gig").Add("ticket-early", "buyer: ann")
	tx.Commit()
	sim.Run()

	// The last ticket is sold TWICE, concurrently, at different sites.
	t1 := cluster.Replica(sites[0]).Begin()
	ipa.CompSetAt(t1, "event/gig").Add("ticket-east", "buyer: bob")
	t1.Commit()
	t2 := cluster.Replica(sites[1]).Begin()
	ipa.CompSetAt(t2, "event/gig").Add("ticket-west", "buyer: cyd")
	t2.Commit()
	sim.Run()

	fmt.Println("after the concurrent sales replicate:")
	for _, id := range sites {
		tx := cluster.Replica(id).Begin()
		ref := ipa.CompSetAt(tx, "event/gig")
		fmt.Printf("  %-8s sold=%d capacity=%d violating=%v\n", id, ref.SizeObserved(), capacity, ref.Violating())
		tx.Commit()
	}

	// Reading the event triggers the compensation: the newest ticket is
	// cancelled (the buyer would be refunded), and the cancellation
	// commits with the reading transaction and replicates.
	read := cluster.Replica(sites[2]).Begin()
	visible := ipa.CompSetAt(read, "event/gig").Read()
	read.Commit()
	fmt.Printf("\na read at %s compensates; visible tickets: %v\n", sites[2], visible)

	sim.Run()
	fmt.Println("\nafter the compensation replicates:")
	for _, id := range sites {
		tx := cluster.Replica(id).Begin()
		ref := ipa.CompSetAt(tx, "event/gig")
		fmt.Printf("  %-8s sold=%d violating=%v\n", id, ref.SizeObserved(), ref.Violating())
		tx.Commit()
	}
}
