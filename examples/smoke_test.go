// Package examples holds no library code — only the smoke tests that
// build and run every example program to completion. The examples are the
// project's executable documentation; a refactor that breaks one should
// fail `go test ./...`, not wait for a reader to notice.
package examples

import (
	"context"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"ipa"
)

// exampleDirs lists every example program.
func exampleDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	if len(dirs) < 5 {
		t.Fatalf("expected at least 5 example programs, found %v", dirs)
	}
	return dirs
}

// driveQuickstartAPI exercises the Open → Mount → Call client API on one
// backend: mount the quickstart spec, run the headline race, and require
// clean invariants plus identical digests at every replica.
func driveQuickstartAPI(t *testing.T, backend string) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("quickstart", "quickstart.spec"))
	if err != nil {
		t.Fatal(err)
	}
	db, err := ipa.Open(ipa.ClusterOptions{Backend: backend, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	app, err := db.Mount(string(src))
	if err != nil {
		t.Fatal(err)
	}
	sites := db.Replicas()
	east, west := app.At(sites[0]), app.At(sites[1])

	for _, call := range [][]string{
		{"add_player", "alice"}, {"add_tourn", "cup"},
	} {
		if err := east.Call(call[0], call[1:]...); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Settle(); err != nil {
		t.Fatal(err)
	}
	if err := west.Call("enroll", "zoe", "cup"); !errors.Is(err, ipa.ErrPrecondition) {
		t.Fatalf("enroll of unknown player: err = %v, want ErrPrecondition", err)
	}
	if err := east.Call("rem_tourn", "cup"); err != nil {
		t.Fatal(err)
	}
	if err := west.Call("enroll", "alice", "cup"); err != nil {
		t.Fatal(err)
	}
	if err := db.Settle(); err != nil {
		t.Fatal(err)
	}
	if v := app.CheckQuiescent(); len(v) > 0 {
		t.Fatalf("invariant violations on %s: %v", backend, v)
	}
	base := app.Digest(sites[0])
	for _, id := range sites {
		if d := app.Digest(id); d != base || d == "" {
			t.Fatalf("digest diverged on %s at %s:\n%s\nvs\n%s", backend, id, d, base)
		}
	}
}

// TestQuickstartAPISim runs the client API on the deterministic
// simulator backend.
func TestQuickstartAPISim(t *testing.T) { driveQuickstartAPI(t, ipa.BackendSim) }

// TestQuickstartAPINet runs the identical flow on real netrepl sockets.
func TestQuickstartAPINet(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket cluster")
	}
	driveQuickstartAPI(t, ipa.BackendNet)
}

// TestExamplesRunToCompletion builds and runs each example with a
// generous timeout. The examples use small fixed parameters already; a
// run that errors, hangs, or panics fails here.
func TestExamplesRunToCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run per example")
	}
	root, err := filepath.Abs("..")
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range exampleDirs(t) {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./examples/"+dir)
			cmd.Dir = root
			out, err := cmd.CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("example %s timed out\n%s", dir, out)
			}
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", dir, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s produced no output", dir)
			}
		})
	}
}
