// Package examples holds no library code — only the smoke tests that
// build and run every example program to completion. The examples are the
// project's executable documentation; a refactor that breaks one should
// fail `go test ./...`, not wait for a reader to notice.
package examples

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// exampleDirs lists every example program.
func exampleDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	if len(dirs) < 5 {
		t.Fatalf("expected at least 5 example programs, found %v", dirs)
	}
	return dirs
}

// TestExamplesRunToCompletion builds and runs each example with a
// generous timeout. The examples use small fixed parameters already; a
// run that errors, hangs, or panics fails here.
func TestExamplesRunToCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run per example")
	}
	root, err := filepath.Abs("..")
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range exampleDirs(t) {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./examples/"+dir)
			cmd.Dir = root
			out, err := cmd.CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("example %s timed out\n%s", dir, out)
			}
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", dir, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s produced no output", dir)
			}
		})
	}
}
