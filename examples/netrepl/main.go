// Netrepl example: the same replicated store running over real TCP
// sockets instead of the simulator — three nodes on localhost, concurrent
// conflicting writes, CRDT convergence over the wire, and the streaming
// transport's per-node metrics.
//
//	go run ./examples/netrepl
package main

import (
	"fmt"
	"log"
	"time"

	"ipa/internal/clock"
	"ipa/internal/netrepl"
	"ipa/internal/store"
)

func main() {
	ids := []clock.ReplicaID{"lisbon", "porto", "faro"}
	nodes := make([]*netrepl.Node, len(ids))
	for i, id := range ids {
		n, err := netrepl.NewNode(id, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
		fmt.Printf("node %-7s listening on %s\n", id, n.Addr())
	}
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				a.AddPeer(b.ID(), b.Addr())
			}
		}
	}

	// Concurrent conflicting writes: everyone enrolls someone, one node
	// removes the tournament, another touches it back (the IPA repair).
	nodes[0].Do(func(r *store.Replica) {
		tx := r.Begin()
		store.AWSetAt(tx, "tournaments").Add("cup", "prize: 100")
		tx.Commit()
	})
	time.Sleep(50 * time.Millisecond) // let the seed replicate

	nodes[1].Do(func(r *store.Replica) {
		tx := r.Begin()
		store.AWSetAt(tx, "tournaments").Remove("cup")
		tx.Commit()
	})
	nodes[2].Do(func(r *store.Replica) {
		tx := r.Begin()
		store.AWSetAt(tx, "enrolled").Add("alice|cup", "")
		store.AWSetAt(tx, "tournaments").Touch("cup")
		tx.Commit()
	})

	// Wait for convergence over the sockets.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		clocks := make([]clock.Vector, len(nodes))
		for i, n := range nodes {
			clocks[i] = n.Clock()
		}
		same := true
		for i := 1; i < len(clocks); i++ {
			if !clocks[i].Equal(clocks[0]) {
				same = false
			}
		}
		if same {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	fmt.Println("\nconverged state over TCP:")
	for _, n := range nodes {
		n.Do(func(r *store.Replica) {
			tx := r.Begin()
			tourns := ipaView(tx)
			fmt.Printf("  %-7s tournament=%v enrolment=%v\n", n.ID(), tourns.exists, tourns.enrolled)
			tx.Commit()
		})
	}
	fmt.Println("\nthe add-wins touch won over the wire, exactly as in the simulation")

	fmt.Println("\ntransport metrics:")
	for _, n := range nodes {
		fmt.Printf("  %-7s %s\n", n.ID(), n.Stats())
	}
}

type view struct {
	exists   bool
	enrolled bool
}

func ipaView(tx *store.Txn) view {
	return view{
		exists:   store.AWSetAt(tx, "tournaments").Contains("cup"),
		enrolled: store.AWSetAt(tx, "enrolled").Contains("alice|cup"),
	}
}
