package ipa

import (
	"strings"
	"testing"
)

const demoSpec = `
spec demo

invariant forall (Player: p, Tournament: t) :- enrolled(p, t) => player(p) and tournament(t)

operation add_player(Player: p) {
    player(p) := true
}
operation add_tourn(Tournament: t) {
    tournament(t) := true
}
operation rem_tourn(Tournament: t) {
    tournament(t) := false
}
operation enroll(Player: p, Tournament: t) {
    enrolled(p, t) := true
}
`

func TestPublicAnalysisPipeline(t *testing.T) {
	s, err := ParseSpec(demoSpec)
	if err != nil {
		t.Fatal(err)
	}
	conflicts, err := FindConflicts(s, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %d", len(conflicts))
	}
	repairs, err := ProposeRepairs(s, conflicts[0], AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) == 0 {
		t.Fatal("no repairs")
	}
	res, err := Analyze(s, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unsolved) != 0 {
		t.Fatalf("unsolved: %v", res.Unsolved)
	}
	if !strings.Contains(res.Spec.String(), "tournament(t) := true") &&
		!strings.Contains(res.Spec.String(), "enrolled(*, t) := false") {
		t.Fatalf("patched spec missing repair:\n%s", res.Spec)
	}
}

func TestPublicRuntime(t *testing.T) {
	sim, cluster := NewPaperCluster(7)
	sites := PaperSites()
	east := cluster.Replica(sites[0])
	west := cluster.Replica(sites[1])

	tx := east.Begin()
	AWSetAt(tx, "tournaments").Add("cup", "")
	tx.Commit()
	sim.Run()

	// Concurrent remove vs touch: add-wins keeps the tournament.
	tx1 := east.Begin()
	AWSetAt(tx1, "tournaments").Remove("cup")
	tx1.Commit()
	tx2 := west.Begin()
	AWSetAt(tx2, "tournaments").Touch("cup")
	tx2.Commit()
	sim.Run()

	for _, id := range sites {
		tx := cluster.Replica(id).Begin()
		if !AWSetAt(tx, "tournaments").Contains("cup") {
			t.Fatalf("replica %s lost the tournament", id)
		}
		tx.Commit()
	}
}

func TestPublicCompSet(t *testing.T) {
	sim, cluster := NewPaperCluster(8)
	for _, id := range PaperSites() {
		SeedCompSet(cluster.Replica(id), "event", 1)
	}
	tx := cluster.Replica(PaperSites()[0]).Begin()
	CompSetAt(tx, "event").Add("t1", "")
	tx.Commit()
	tx2 := cluster.Replica(PaperSites()[1]).Begin()
	CompSetAt(tx2, "event").Add("t2", "")
	tx2.Commit()
	sim.Run()

	rtx := cluster.Replica(PaperSites()[2]).Begin()
	got := CompSetAt(rtx, "event").Read()
	rtx.Commit()
	if len(got) != 1 {
		t.Fatalf("compensated read = %v", got)
	}
}
