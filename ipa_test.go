package ipa

import (
	"strings"
	"testing"
)

const demoSpec = `
spec demo

invariant forall (Player: p, Tournament: t) :- enrolled(p, t) => player(p) and tournament(t)

operation add_player(Player: p) {
    player(p) := true
}
operation add_tourn(Tournament: t) {
    tournament(t) := true
}
operation rem_tourn(Tournament: t) {
    tournament(t) := false
}
operation enroll(Player: p, Tournament: t) {
    enrolled(p, t) := true
}
`

func TestPublicAnalysisPipeline(t *testing.T) {
	s, err := ParseSpec(demoSpec)
	if err != nil {
		t.Fatal(err)
	}
	conflicts, err := FindConflicts(s, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %d", len(conflicts))
	}
	repairs, err := ProposeRepairs(s, conflicts[0], AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) == 0 {
		t.Fatal("no repairs")
	}
	res, err := Analyze(s, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unsolved) != 0 {
		t.Fatalf("unsolved: %v", res.Unsolved)
	}
	if !strings.Contains(res.Spec.String(), "tournament(t) := true") &&
		!strings.Contains(res.Spec.String(), "enrolled(*, t) := false") {
		t.Fatalf("patched spec missing repair:\n%s", res.Spec)
	}
}

// TestOpenMountCall drives the client API end to end: spec in,
// invariant-preserving cluster out.
func TestOpenMountCall(t *testing.T) {
	if _, err := Open(ClusterOptions{Backend: "weird"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
	db, err := Open(ClusterOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Mount("operation } {"); err == nil {
		t.Fatal("unparseable spec mounted")
	}
	app, err := db.Mount(demoSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Analysis().Applied) == 0 {
		t.Fatal("analysis applied no repairs")
	}
	s := app.At(PaperSites()[0])
	if err := s.Call("nope"); err == nil {
		t.Fatal("unknown operation accepted")
	}
	for _, call := range [][]string{{"add_player", "ann"}, {"add_tourn", "open"}, {"enroll", "ann", "open"}} {
		if err := s.Call(call[0], call[1:]...); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Settle(); err != nil {
		t.Fatal(err)
	}
	if v := app.CheckInvariants(); len(v) > 0 {
		t.Fatalf("violations: %v", v)
	}
	base := app.Digest(PaperSites()[0])
	for _, id := range db.Replicas() {
		if app.Digest(id) != base {
			t.Fatalf("digest diverged at %s", id)
		}
	}
}

func TestPublicRuntime(t *testing.T) {
	sim, cluster := NewPaperCluster(7)
	sites := PaperSites()
	east := cluster.Replica(sites[0])
	west := cluster.Replica(sites[1])

	tx := east.Begin()
	AWSetAt(tx, "tournaments").Add("cup", "")
	tx.Commit()
	sim.Run()

	// Concurrent remove vs touch: add-wins keeps the tournament.
	tx1 := east.Begin()
	AWSetAt(tx1, "tournaments").Remove("cup")
	tx1.Commit()
	tx2 := west.Begin()
	AWSetAt(tx2, "tournaments").Touch("cup")
	tx2.Commit()
	sim.Run()

	for _, id := range sites {
		tx := cluster.Replica(id).Begin()
		if !AWSetAt(tx, "tournaments").Contains("cup") {
			t.Fatalf("replica %s lost the tournament", id)
		}
		tx.Commit()
	}
}

func TestPublicCompSet(t *testing.T) {
	sim, cluster := NewPaperCluster(8)
	for _, id := range PaperSites() {
		SeedCompSet(cluster.Replica(id), "event", 1)
	}
	tx := cluster.Replica(PaperSites()[0]).Begin()
	CompSetAt(tx, "event").Add("t1", "")
	tx.Commit()
	tx2 := cluster.Replica(PaperSites()[1]).Begin()
	CompSetAt(tx2, "event").Add("t2", "")
	tx2.Commit()
	sim.Run()

	rtx := cluster.Replica(PaperSites()[2]).Begin()
	got := CompSetAt(rtx, "event").Read()
	rtx.Commit()
	if len(got) != 1 {
		t.Fatalf("compensated read = %v", got)
	}
}
