package ipa_test

// The Close-ordering regression test for the serving path (the PR 3
// Close/DropConnections race class, one layer up): closing an ipa.DB
// while network sessions still have CALLs in flight — server handlers
// holding Begin-opened transactions — must not race, panic, or deadlock.
// In-flight calls may fail, but the process stays sound and a subsequent
// server Shutdown completes. Run under -race (CI's race job does).

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ipa"
	"ipa/internal/server"
)

func TestDBCloseWithInflightServerCalls(t *testing.T) {
	if testing.Short() {
		t.Skip("netrepl cluster churn in -short")
	}
	for round := 0; round < 3; round++ {
		t.Run(fmt.Sprintf("round%d", round), func(t *testing.T) {
			db, err := ipa.Open(ipa.ClusterOptions{Backend: ipa.BackendNet})
			if err != nil {
				t.Fatal(err)
			}
			srv := server.New(db.Cluster(), server.Config{DrainTimeout: 10 * time.Second})
			src := "spec closerace\noperation add(Item: x) {\n    p(x) := true\n}\n"
			if _, err := srv.Mount(src); err != nil {
				db.Close()
				t.Fatal(err)
			}
			if err := srv.Start("127.0.0.1:0"); err != nil {
				db.Close()
				t.Fatal(err)
			}

			// Clients hammer CALLs for the whole test; after Close they
			// must see clean errors or closed connections, never hangs.
			var stop atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for seq := 0; !stop.Load(); seq++ {
						c, err := server.Dial(srv.Addr(), time.Second)
						if err != nil {
							time.Sleep(time.Millisecond)
							continue
						}
						for i := 0; i < 64 && !stop.Load(); i++ {
							rp, err := c.Do("CALL", "closerace", "add", fmt.Sprintf("w%d-%d-%d", w, seq, i))
							if err != nil {
								break
							}
							if rp.Kind == '-' && !strings.HasPrefix(rp.Str, "ERR") && !strings.HasPrefix(rp.Str, "PRECONDITION") {
								t.Errorf("unexpected reply: %s", rp.Str)
								break
							}
						}
						c.Close()
					}
				}(w)
			}

			// Let calls get in flight, then yank the cluster out from
			// under the server — the bug class under test. Bound it: a
			// deadlocked Close is a failure, not a hang.
			time.Sleep(50 * time.Millisecond)
			closed := make(chan error, 1)
			go func() { closed <- db.Close() }()
			select {
			case <-closed:
			case <-time.After(30 * time.Second):
				t.Fatal("db.Close deadlocked with in-flight server calls")
			}

			// The server must still drain cleanly after the rug-pull.
			done := make(chan error, 1)
			go func() { done <- srv.Shutdown() }()
			select {
			case err := <-done:
				if err != nil {
					t.Errorf("shutdown after close: %v", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("server Shutdown deadlocked after db.Close")
			}
			stop.Store(true)
			wg.Wait()
		})
	}
}
