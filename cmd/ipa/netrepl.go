package main

// The -netrepl mode: a local streaming-replication smoke ring. It is the
// ops-facing window into the transport — spin up N nodes on localhost,
// push load through real sockets, and print each node's transport
// metrics (frames, txns/frame, bytes, reconnects, queue depth).

import (
	"fmt"
	"time"

	"ipa/internal/clock"
	"ipa/internal/netrepl"
	"ipa/internal/store"
)

// runNetrepl runs the smoke ring and prints a per-node metrics table.
func runNetrepl(nodes, txns int, legacy bool) error {
	if nodes < 2 {
		return fmt.Errorf("-netrepl needs at least 2 nodes, got %d", nodes)
	}
	cfg := netrepl.Config{Legacy: legacy}
	ring := make([]*netrepl.Node, nodes)
	for i := range ring {
		id := clock.ReplicaID(fmt.Sprintf("node%d", i))
		n, err := netrepl.NewNodeWithConfig(id, "127.0.0.1:0", cfg)
		if err != nil {
			return err
		}
		defer n.Close()
		ring[i] = n
	}
	for _, a := range ring {
		for _, b := range ring {
			if a != b {
				a.AddPeer(b.ID(), b.Addr())
			}
		}
	}

	mode := "streaming"
	if legacy {
		mode = "legacy (one connection per txn)"
	}
	fmt.Printf("netrepl smoke ring: %d nodes, %d txns each, %s transport\n\n", nodes, txns, mode)

	start := time.Now()
	done := make(chan struct{})
	for _, n := range ring {
		n := n
		go func() {
			n.Do(func(r *store.Replica) {
				for k := 0; k < txns; k++ {
					tx := r.Begin()
					store.CounterAt(tx, "ops").Add(1)
					store.AWSetAt(tx, "live").Add(fmt.Sprintf("%s-%d", n.ID(), k), "")
					tx.Commit()
				}
			})
			done <- struct{}{}
		}()
	}
	for range ring {
		<-done
	}
	// The causal clock counts update sequence numbers; each smoke
	// transaction carries two updates (counter + set add).
	want := uint64(2 * txns)
	for deadline := time.Now().Add(time.Minute); ; {
		converged := true
		for _, n := range ring {
			vc := n.Clock()
			for _, o := range ring {
				if vc.Get(o.ID()) < want {
					converged = false
				}
			}
		}
		if converged {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("ring did not converge within a minute")
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)

	total := float64(nodes * txns)
	fmt.Printf("converged in %v (%.0f txn/s end to end)\n\n", elapsed.Round(time.Millisecond), total/elapsed.Seconds())
	fmt.Printf("%-8s %10s %10s %11s %12s %8s %11s %8s %7s\n",
		"node", "txns-sent", "frames", "txns/frame", "bytes-sent", "dials", "reconnects", "backpr", "queue")
	for _, n := range ring {
		s := n.Stats()
		perFrame := 0.0
		if s.FramesSent > 0 {
			perFrame = float64(s.TxnsSent) / float64(s.FramesSent)
		}
		fmt.Printf("%-8s %10d %10d %11.1f %12d %8d %11d %8d %7d\n",
			n.ID(), s.TxnsSent, s.FramesSent, perFrame, s.BytesSent,
			s.Dials, s.Reconnects, s.BackpressureWaits, s.QueueDepth)
	}
	return nil
}
