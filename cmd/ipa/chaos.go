package main

// The chaos subcommand: drive the deterministic chaos harness from the
// command line — seeded campaigns, schedule replay, and the real-socket
// netrepl soak.
//
//	ipa chaos -app tournament -schedules 1000       # seeded campaign
//	ipa chaos -app tournament -variant causal       # watch the unrepaired app fail
//	ipa chaos -app tournament -break enroll         # disable one repair, catch it
//	ipa chaos -app tournament-spec                  # the engine-executed analyzed spec
//	ipa chaos -app spec:path/to/app.spec            # fuzz ANY mounted specification
//	ipa chaos -app tournament -seed 0xdeadbeef      # replay one schedule exactly
//	ipa chaos -app ticket -backend netrepl          # same campaign on real TCP sockets
//	ipa chaos -replay chaos-repro.json              # replay a shrunk repro file
//	ipa chaos -soak -nodes 3 -txns 500              # netrepl kill/reconnect soak
//
// On violation the harness shrinks the failing schedule to a minimal
// repro, writes it as JSON, and prints both replay commands (full seed
// and shrunk file). Exit status 1 signals a violation.

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ipa/internal/harness"
	"ipa/internal/runtime"
	"ipa/internal/wan"
)

// errViolation signals that the campaign (or replay) reproduced an
// invariant violation: the details are already printed, the process
// must exit 1.
var errViolation = fmt.Errorf("chaos violation: %w", errReported)

func runChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	var (
		app       = fs.String("app", "tournament", "application to drive: "+strings.Join(harness.Apps(), ", ")+", or spec:<file> to mount and fuzz any specification")
		backend   = fs.String("backend", "sim", "replication backend: sim (deterministic, replayable) or netrepl (real TCP sockets)")
		variant   = fs.String("variant", "ipa", "application variant: ipa (repairs on) or causal (repairs off)")
		breakOp   = fs.String("break", "", "run exactly this op kind without its repair (self-test the harness)")
		replicas  = fs.Int("replicas", 3, "simulated replica sites")
		seedStr   = fs.String("seed", "", "replay exactly one schedule seed (hex or decimal) instead of a campaign")
		campaign  = fs.Uint64("campaign", 42, "campaign seed the per-schedule seeds derive from")
		schedules = fs.Int("schedules", 1000, "schedules to run before declaring the app clean")
		ops       = fs.Int("ops", 0, "ops per schedule (default 60)")
		faults    = fs.Int("faults", 0, "fault windows per schedule (default 6)")
		horizonMs = fs.Float64("horizon", 0, "workload horizon in virtual milliseconds (default 3000)")
		conc      = fs.Int("concurrency", 1, "parallel client workers per schedule (netrepl backend only)")
		replay    = fs.String("replay", "", "replay a schedule JSON file (from a previous shrink)")
		out       = fs.String("out", "", "path for the shrunk repro JSON (default chaos-repro-<seed>.json)")
		noShrink  = fs.Bool("no-shrink", false, "skip shrinking on violation")
		verbose   = fs.Bool("v", false, "print progress every 100 schedules")

		soak     = fs.Bool("soak", false, "run the real-socket netrepl soak instead of simulated chaos")
		nodes    = fs.Int("nodes", 3, "soak: ring size")
		txns     = fs.Int("txns", 500, "soak: transactions per node")
		killMs   = fs.Int("kill-every", 20, "soak: milliseconds between connection kills")
		soakSeed = fs.Int64("soak-seed", 1, "soak: seed for the kill sequence")
	)
	if err := fs.Parse(args); err != nil {
		return errReported
	}

	switch {
	case *soak:
		res, err := harness.Soak(harness.SoakOptions{
			Nodes:       *nodes,
			TxnsPerNode: *txns,
			KillEvery:   time.Duration(*killMs) * time.Millisecond,
			Seed:        *soakSeed,
		})
		if err != nil {
			return err
		}
		fmt.Println(res)
		if !res.Converged {
			return errViolation
		}
		return nil

	case *replay != "":
		s, err := harness.ReadScheduleFile(*replay)
		if err != nil {
			return err
		}
		v, err := harness.Execute(s)
		if err != nil {
			return err
		}
		if v == nil {
			fmt.Printf("schedule %s: no violation (%d ops, %d faults)\n", *replay, len(s.Ops), len(s.Faults))
			return nil
		}
		fmt.Printf("schedule %s reproduces:\n  %s\n", *replay, v)
		return errViolation

	default:
		cfg, err := harness.Config{
			App:      *app,
			Backend:  *backend,
			Variant:  *variant,
			BreakOp:  *breakOp,
			Replicas: *replicas,
			Ops:      *ops,
			Faults:   *faults,
			Horizon:  wan.Ms(*horizonMs),

			Concurrency: *conc,
		}.Norm()
		if err != nil {
			return err
		}

		if *seedStr != "" {
			seed, err := parseSeed(*seedStr)
			if err != nil {
				return err
			}
			s, v, err := harness.Replay(cfg, seed)
			if err != nil {
				return err
			}
			if v == nil {
				fmt.Printf("seed %#x: no violation (%d ops, %d faults)\n", seed, len(s.Ops), len(s.Faults))
				return nil
			}
			fmt.Printf("seed %#x reproduces:\n  %s\n", seed, v)
			return errViolation
		}

		var progress func(int, *harness.Schedule, *harness.Violation)
		if *verbose {
			progress = func(i int, _ *harness.Schedule, _ *harness.Violation) {
				if (i+1)%100 == 0 {
					fmt.Fprintf(os.Stderr, "  ... %d/%d schedules clean\n", i+1, *schedules)
				}
			}
		}
		// harness.RunWithShrink itself disables shrinking on the netrepl
		// backend (ddmin needs deterministic reproduction); this only
		// tells the user up front.
		if cfg.Backend == runtime.BackendNet && !*noShrink {
			fmt.Fprintln(os.Stderr, "chaos: shrinking disabled on the netrepl backend (runs are not bit-deterministic)")
		}
		res, err := harness.RunWithShrink(cfg, *campaign, *schedules, !*noShrink, progress)
		if err != nil {
			return err
		}
		if res.Violation == nil {
			fmt.Printf("%s/%s: %s\n", cfg.App, cfg.Variant, res.Summary())
			return nil
		}
		fmt.Print(res.Summary())
		fmt.Printf("\nreplay (full schedule):\n  ipa chaos %s -seed %#x\n", cfgFlags(cfg), res.Seed)
		if res.Shrunk != nil {
			path := *out
			if path == "" {
				path = fmt.Sprintf("chaos-repro-%#x.json", res.Seed)
			}
			if err := res.Shrunk.WriteFile(path); err != nil {
				return err
			}
			fmt.Printf("replay (shrunk, exact violation):\n  ipa chaos -replay %s\n", path)
		} else if res.Schedule != nil {
			// No shrunk repro (netrepl runs are not bit-deterministic):
			// ship the full failing schedule so CI can upload it and a
			// human can replay the workload exactly.
			path := *out
			if path == "" {
				path = fmt.Sprintf("chaos-repro-%#x.json", res.Seed)
			}
			if err := res.Schedule.WriteFile(path); err != nil {
				return err
			}
			fmt.Printf("replay (full schedule, workload-exact):\n  ipa chaos -replay %s\n", path)
		}
		return errViolation
	}
}

// cfgFlags renders the non-default flags that reproduce cfg.
func cfgFlags(cfg harness.Config) string {
	parts := []string{"-app " + cfg.App}
	if cfg.Backend != "" && cfg.Backend != "sim" {
		parts = append(parts, "-backend "+cfg.Backend)
	}
	if cfg.Variant != "ipa" {
		parts = append(parts, "-variant "+cfg.Variant)
	}
	if cfg.BreakOp != "" {
		parts = append(parts, "-break "+cfg.BreakOp)
	}
	d := harness.Defaults(cfg.App)
	if cfg.Replicas != d.Replicas {
		parts = append(parts, fmt.Sprintf("-replicas %d", cfg.Replicas))
	}
	if cfg.Ops != d.Ops {
		parts = append(parts, fmt.Sprintf("-ops %d", cfg.Ops))
	}
	if cfg.Faults != d.Faults {
		parts = append(parts, fmt.Sprintf("-faults %d", cfg.Faults))
	}
	if cfg.Horizon != d.Horizon {
		parts = append(parts, fmt.Sprintf("-horizon %g", cfg.Horizon.Millis()))
	}
	return strings.Join(parts, " ")
}

func parseSeed(s string) (uint64, error) {
	ls := strings.ToLower(s)
	var v uint64
	var err error
	if strings.HasPrefix(ls, "0x") {
		v, err = strconv.ParseUint(ls[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, fmt.Errorf("bad seed %q (want decimal or 0x-hex)", s)
	}
	return v, nil
}
