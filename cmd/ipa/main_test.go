package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipa/internal/analysis"
)

func TestLoadSpecBundled(t *testing.T) {
	for name := range bundled {
		s, err := loadSpec("", name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name == "" || len(s.Operations) == 0 {
			t.Fatalf("%s: empty spec", name)
		}
	}
	if _, err := loadSpec("", "nope"); err == nil {
		t.Fatal("unknown app must error")
	}
	if _, err := loadSpec("", ""); err == nil {
		t.Fatal("missing flags must error")
	}
}

func TestLoadSpecFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.spec")
	src := "spec x\ninvariant forall (A: a) :- p(a)\noperation f(A: a) {\n p(a) := true\n}\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := loadSpec(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "x" {
		t.Fatalf("name = %q", s.Name)
	}
	if _, err := loadSpec(filepath.Join(dir, "missing.spec"), ""); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestPromptChooser(t *testing.T) {
	read, write, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer read.Close()
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()

	if _, err := write.WriteString("1\n\nbogus\n99\n"); err != nil {
		t.Fatal(err)
	}
	write.Close()

	chooser := promptChooser(read, out)
	c := &analysis.Conflict{}
	s, _ := loadSpec("", "tournament")
	c.Op1, c.Op2 = s.Operations[0], s.Operations[1]
	repairs := make([]analysis.Repair, 3)

	if got := chooser(c, repairs); got != 1 {
		t.Fatalf("explicit choice = %d, want 1", got)
	}
	if got := chooser(c, repairs); got != 0 {
		t.Fatalf("empty line should default to 0, got %d", got)
	}
	if got := chooser(c, repairs); got != 0 {
		t.Fatalf("bogus input should default to 0, got %d", got)
	}
	if got := chooser(c, repairs); got != 0 {
		t.Fatalf("out-of-range should default to 0, got %d", got)
	}
	// EOF: default.
	if got := chooser(c, repairs); got != 0 {
		t.Fatalf("EOF should default to 0, got %d", got)
	}

	data, _ := os.ReadFile(out.Name())
	if !strings.Contains(string(data), "choose resolution") {
		t.Fatal("prompt not written")
	}
}
