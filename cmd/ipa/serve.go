package main

// The serve subcommand: put an ipa database on the network. It opens a
// cluster on either backend, mounts the requested applications (bundled
// ones with their recorded repair choices, or any spec file), serves the
// RESP-style wire protocol, and drains gracefully on SIGINT/SIGTERM —
// stop accepting, finish in-flight calls, ack nothing after close, then
// settle replication and close the cluster, so every acknowledged CALL
// is durably applied at shutdown.
//
//	ipa serve -app tournament                       # netrepl cluster on :6390
//	ipa serve -addr :7000 -app tournament,twitter   # several bundled apps
//	ipa serve -spec path/to/app.spec                # analyze + serve any spec
//	ipa serve -backend sim -seed 7                  # deterministic sim backend
//	ipa serve -app tournament -data-dir /var/ipa    # durable sites; restart recovers
//	redis-cli -p 6390 PING                          # inline commands round-trip
//
// See DESIGN.md ("The serving layer") for the protocol.

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ipa"
	"ipa/internal/analysis"
	"ipa/internal/apps/tournament"
	"ipa/internal/apps/twitter"
	"ipa/internal/server"
	"ipa/internal/wan"
)

// bundledAnalysis maps the bundled applications with recorded repair
// choices (the paper's figures) to them; the rest analyze fresh with
// default options.
var bundledAnalysis = map[string]func() *analysis.Result{
	"tournament": tournament.Analysis,
	"twitter":    twitter.Analysis,
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:6390", "listen address")
		backend  = fs.String("backend", ipa.BackendNet, "replication backend: sim or netrepl")
		appsCSV  = fs.String("app", "", "bundled applications to mount, comma separated (recorded repair choices where available)")
		specPath = fs.String("spec", "", "specification file to analyze and mount")
		sites    = fs.Int("sites", 3, "replica sites in the cluster")
		seed     = fs.Int64("seed", 42, "simulation seed (sim backend)")
		dataDir  = fs.String("data-dir", "", "durability root (netrepl backend): per-site WAL + snapshots under <dir>/<site>; restart recovers")
		drain    = fs.Duration("drain", 10*time.Second, "graceful drain timeout on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return errReported
	}
	if *appsCSV == "" && *specPath == "" {
		return fmt.Errorf("serve: nothing to serve — pass -app and/or -spec (clients can also MOUNT over the wire)")
	}
	if *sites < 1 {
		return fmt.Errorf("serve: -sites must be at least 1")
	}

	db, err := ipa.Open(ipa.ClusterOptions{Backend: *backend, Sites: serveSites(*sites), Seed: *seed, DataDir: *dataDir})
	if err != nil {
		return err
	}
	defer db.Close()

	srv := server.New(db.Cluster(), server.Config{DrainTimeout: *drain})
	var mounted []string
	if *appsCSV != "" {
		for _, name := range strings.Split(*appsCSV, ",") {
			name = strings.TrimSpace(name)
			mk, ok := bundled[name]
			if !ok {
				return fmt.Errorf("serve: unknown application %q (try ipa -list)", name)
			}
			orig := mk()
			var res *analysis.Result
			if recorded, ok := bundledAnalysis[name]; ok {
				res = recorded()
			} else if res, err = analysis.Run(orig, analysis.Options{}); err != nil {
				return fmt.Errorf("serve: analyze %s: %w", name, err)
			}
			got, err := srv.MountAnalyzed(orig, res)
			if err != nil {
				return fmt.Errorf("serve: mount %s: %w", name, err)
			}
			mounted = append(mounted, got)
		}
	}
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		got, err := srv.Mount(string(data))
		if err != nil {
			return fmt.Errorf("serve: mount %s: %w", *specPath, err)
		}
		mounted = append(mounted, got)
	}

	if err := srv.Start(*addr); err != nil {
		return err
	}
	fmt.Printf("ipa serve: listening on %s (%s backend, %d sites, apps: %s)\n",
		srv.Addr(), db.Cluster().Backend(), *sites, strings.Join(mounted, ", "))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	signal.Stop(sig)
	fmt.Fprintf(os.Stderr, "ipa serve: %s: draining (%v timeout)...\n", got, *drain)

	// The exit ordering that makes acks durable: drain connections (every
	// acked CALL has executed), settle replication (every executed CALL is
	// delivered at every site), then the deferred Close releases the
	// cluster.
	if err := srv.Shutdown(); err != nil {
		return err
	}
	if err := db.Settle(); err != nil {
		return err
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "ipa serve: drained clean (%d conns served, %d commands, %d calls, %d refusals)\n",
		st.ConnsAccepted, st.Commands, st.Calls, st.Refusals)
	return nil
}

// serveSites names n replica sites: the paper's three WAN sites first,
// then synthetic ones (the harness's naming).
func serveSites(n int) []ipa.ReplicaID {
	base := wan.Sites()
	ids := make([]ipa.ReplicaID, 0, n)
	for i := 0; i < n; i++ {
		if i < len(base) {
			ids = append(ids, ipa.ReplicaID(base[i]))
		} else {
			ids = append(ids, ipa.ReplicaID(fmt.Sprintf("site-%d", i)))
		}
	}
	return ids
}
