// Command ipa is the IPA analysis tool (paper §4.1) and server: it reads
// an application specification, detects the operation pairs that can
// violate invariants under concurrency, proposes repairs, and prints the
// patched, invariant-preserving specification together with the
// synthesised compensations — or serves analyzed applications to network
// clients.
//
// Usage:
//
//	ipa -app tournament                 # analyse a bundled application
//	ipa -spec path/to/app.spec          # analyse a spec file
//	ipa -app twitter -conflicts         # only list conflicts
//	ipa -app tournament -interactive    # choose repairs by hand
//	ipa -app ticket -classify           # Table-1 style classification
//	ipa -list                           # list bundled applications
//	ipa -netrepl 3                      # TCP replication smoke ring + metrics
//	ipa -netrepl 5 -netrepl-legacy      # same over the legacy transport
//	ipa serve -app tournament           # serve over TCP (see serve.go)
//	ipa chaos -app tournament           # deterministic chaos campaign (see chaos.go)
//	ipa chaos -app spec:app.spec        # mount and fuzz any specification file
//	ipa chaos -replay repro.json        # replay a shrunk failure exactly
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"ipa/internal/analysis"
	"ipa/internal/apps/ticket"
	"ipa/internal/apps/tournament"
	"ipa/internal/apps/tpcw"
	"ipa/internal/apps/twitter"
	"ipa/internal/spec"
)

var bundled = map[string]func() *spec.Spec{
	"tournament": tournament.Spec,
	"twitter":    twitter.Spec,
	"ticket":     ticket.Spec,
	"tpcw":       tpcw.Spec,
}

// errReported signals a failure whose message is already on the user's
// terminal (flag usage, chaos violation summaries): main should exit
// non-zero without printing anything more.
var errReported = errors.New("already reported")

// main is the single exit point: every subcommand returns its error here
// so deferred cleanup (cluster close, listener release, artifact flush)
// has run by the time the process exits.
func main() {
	if err := run(os.Args[1:]); err != nil {
		if !errors.Is(err, errReported) {
			fmt.Fprintln(os.Stderr, "ipa:", err)
		}
		os.Exit(1)
	}
}

func run(args []string) error {
	// Subcommand dispatch precedes flag parsing: `ipa chaos ...` and
	// `ipa serve ...` own their flag sets.
	if len(args) > 0 {
		switch args[0] {
		case "chaos":
			return runChaos(args[1:])
		case "serve":
			return runServe(args[1:])
		}
	}

	fs := flag.NewFlagSet("ipa", flag.ContinueOnError)
	var (
		specPath    = fs.String("spec", "", "path to a specification file")
		appName     = fs.String("app", "", "bundled application to analyse")
		list        = fs.Bool("list", false, "list bundled applications")
		onlyConf    = fs.Bool("conflicts", false, "only detect and print conflicts")
		classify    = fs.Bool("classify", false, "classify invariants (Table 1 style)")
		interactive = fs.Bool("interactive", false, "choose repairs interactively")
		scope       = fs.Int("scope", 0, "domain elements per sort (default 2)")
		maxPreds    = fs.Int("max-preds", 0, "max extra effects per repair (default 2)")

		netreplN      = fs.Int("netrepl", 0, "run a TCP replication smoke ring with this many nodes and print transport metrics")
		netreplTxns   = fs.Int("netrepl-txns", 1000, "transactions per node in the smoke ring")
		netreplLegacy = fs.Bool("netrepl-legacy", false, "use the legacy per-txn-connection transport in the smoke ring")
	)
	if err := fs.Parse(args); err != nil {
		return errReported // the flag package already printed usage
	}

	if *netreplN > 0 {
		return runNetrepl(*netreplN, *netreplTxns, *netreplLegacy)
	}

	if *list {
		names := make([]string, 0, len(bundled))
		for n := range bundled {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return nil
	}

	s, err := loadSpec(*specPath, *appName)
	if err != nil {
		return err
	}

	opts := analysis.Options{Scope: *scope, MaxRepairPreds: *maxPreds}
	if *interactive {
		opts.Chooser = promptChooser(os.Stdin, os.Stdout)
	}

	switch {
	case *onlyConf:
		conflicts, err := analysis.FindConflicts(s, opts)
		if err != nil {
			return err
		}
		if len(conflicts) == 0 {
			fmt.Println("no conflicting operation pairs: the specification is I-confluent")
			return nil
		}
		for _, c := range conflicts {
			fmt.Println(c)
			fmt.Print(c.Example)
			fmt.Println()
		}

	case *classify:
		ccs, err := analysis.Classify(s, opts)
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %-10s %-6s  %s\n", "class", "I-Conf.", "IPA", "clause")
		for _, cc := range ccs {
			clause := ""
			if cc.Clause != nil {
				clause = cc.Clause.String()
			}
			iconf := "No"
			if cc.IConfluent {
				iconf = "Yes"
			}
			fmt.Printf("%-18s %-10s %-6s  %s\n", cc.Class, iconf, cc.IPASupport, clause)
		}

	default:
		res, err := analysis.Run(s, opts)
		if err != nil {
			return err
		}
		fmt.Print(res.Summary())
		fmt.Println()
		fmt.Println("---- patch recipe ----")
		fmt.Print(res.Diff(s))
		fmt.Println()
		fmt.Println("---- patched specification ----")
		fmt.Print(res.Spec.String())
	}
	return nil
}

func loadSpec(path, app string) (*spec.Spec, error) {
	switch {
	case path != "":
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return spec.Parse(string(data))
	case app != "":
		mk, ok := bundled[app]
		if !ok {
			return nil, fmt.Errorf("unknown application %q (try -list)", app)
		}
		return mk(), nil
	}
	return nil, fmt.Errorf("one of -spec or -app is required")
}

// promptChooser implements the paper's interactive pickResolution: the
// programmer sees every proposed repair and selects the semantics that
// fits the application.
func promptChooser(in io.Reader, out io.Writer) func(*analysis.Conflict, []analysis.Repair) int {
	reader := bufio.NewReader(in)
	return func(c *analysis.Conflict, repairs []analysis.Repair) int {
		fmt.Fprintf(out, "\n%s\n", c)
		for i, r := range repairs {
			fmt.Fprintf(out, "  [%d] %s\n", i, r)
		}
		fmt.Fprintf(out, "choose resolution [0-%d, default 0]: ", len(repairs)-1)
		line, err := reader.ReadString('\n')
		if err != nil {
			return 0
		}
		line = strings.TrimSpace(line)
		if line == "" {
			return 0
		}
		n, err := strconv.Atoi(line)
		if err != nil || n < 0 || n >= len(repairs) {
			fmt.Fprintln(out, "invalid choice, using 0")
			return 0
		}
		return n
	}
}
