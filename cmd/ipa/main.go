// Command ipa is the IPA analysis tool (paper §4.1): it reads an
// application specification, detects the operation pairs that can violate
// invariants under concurrency, proposes repairs, and prints the patched,
// invariant-preserving specification together with the synthesised
// compensations.
//
// Usage:
//
//	ipa -app tournament                 # analyse a bundled application
//	ipa -spec path/to/app.spec          # analyse a spec file
//	ipa -app twitter -conflicts         # only list conflicts
//	ipa -app tournament -interactive    # choose repairs by hand
//	ipa -app ticket -classify           # Table-1 style classification
//	ipa -list                           # list bundled applications
//	ipa -netrepl 3                      # TCP replication smoke ring + metrics
//	ipa -netrepl 5 -netrepl-legacy      # same over the legacy transport
//	ipa chaos -app tournament           # deterministic chaos campaign (see chaos.go)
//	ipa chaos -app spec:app.spec        # mount and fuzz any specification file
//	ipa chaos -replay repro.json        # replay a shrunk failure exactly
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"ipa/internal/analysis"
	"ipa/internal/apps/ticket"
	"ipa/internal/apps/tournament"
	"ipa/internal/apps/tpcw"
	"ipa/internal/apps/twitter"
	"ipa/internal/spec"
)

var bundled = map[string]func() *spec.Spec{
	"tournament": tournament.Spec,
	"twitter":    twitter.Spec,
	"ticket":     ticket.Spec,
	"tpcw":       tpcw.Spec,
}

func main() {
	// Subcommand dispatch precedes flag parsing: `ipa chaos ...` owns its
	// own flag set.
	if len(os.Args) > 1 && os.Args[1] == "chaos" {
		runChaos(os.Args[2:])
		return
	}

	var (
		specPath    = flag.String("spec", "", "path to a specification file")
		appName     = flag.String("app", "", "bundled application to analyse")
		list        = flag.Bool("list", false, "list bundled applications")
		onlyConf    = flag.Bool("conflicts", false, "only detect and print conflicts")
		classify    = flag.Bool("classify", false, "classify invariants (Table 1 style)")
		interactive = flag.Bool("interactive", false, "choose repairs interactively")
		scope       = flag.Int("scope", 0, "domain elements per sort (default 2)")
		maxPreds    = flag.Int("max-preds", 0, "max extra effects per repair (default 2)")

		netreplN      = flag.Int("netrepl", 0, "run a TCP replication smoke ring with this many nodes and print transport metrics")
		netreplTxns   = flag.Int("netrepl-txns", 1000, "transactions per node in the smoke ring")
		netreplLegacy = flag.Bool("netrepl-legacy", false, "use the legacy per-txn-connection transport in the smoke ring")
	)
	flag.Parse()

	if *netreplN > 0 {
		if err := runNetrepl(*netreplN, *netreplTxns, *netreplLegacy); err != nil {
			fatal(err)
		}
		return
	}

	if *list {
		names := make([]string, 0, len(bundled))
		for n := range bundled {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	s, err := loadSpec(*specPath, *appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipa:", err)
		os.Exit(1)
	}

	opts := analysis.Options{Scope: *scope, MaxRepairPreds: *maxPreds}
	if *interactive {
		opts.Chooser = promptChooser(os.Stdin, os.Stdout)
	}

	switch {
	case *onlyConf:
		conflicts, err := analysis.FindConflicts(s, opts)
		if err != nil {
			fatal(err)
		}
		if len(conflicts) == 0 {
			fmt.Println("no conflicting operation pairs: the specification is I-confluent")
			return
		}
		for _, c := range conflicts {
			fmt.Println(c)
			fmt.Print(c.Example)
			fmt.Println()
		}

	case *classify:
		ccs, err := analysis.Classify(s, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-18s %-10s %-6s  %s\n", "class", "I-Conf.", "IPA", "clause")
		for _, cc := range ccs {
			clause := ""
			if cc.Clause != nil {
				clause = cc.Clause.String()
			}
			iconf := "No"
			if cc.IConfluent {
				iconf = "Yes"
			}
			fmt.Printf("%-18s %-10s %-6s  %s\n", cc.Class, iconf, cc.IPASupport, clause)
		}

	default:
		res, err := analysis.Run(s, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Summary())
		fmt.Println()
		fmt.Println("---- patch recipe ----")
		fmt.Print(res.Diff(s))
		fmt.Println()
		fmt.Println("---- patched specification ----")
		fmt.Print(res.Spec.String())
	}
}

func loadSpec(path, app string) (*spec.Spec, error) {
	switch {
	case path != "":
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return spec.Parse(string(data))
	case app != "":
		mk, ok := bundled[app]
		if !ok {
			return nil, fmt.Errorf("unknown application %q (try -list)", app)
		}
		return mk(), nil
	}
	return nil, fmt.Errorf("one of -spec or -app is required")
}

// promptChooser implements the paper's interactive pickResolution: the
// programmer sees every proposed repair and selects the semantics that
// fits the application.
func promptChooser(in *os.File, out *os.File) func(*analysis.Conflict, []analysis.Repair) int {
	reader := bufio.NewReader(in)
	return func(c *analysis.Conflict, repairs []analysis.Repair) int {
		fmt.Fprintf(out, "\n%s\n", c)
		for i, r := range repairs {
			fmt.Fprintf(out, "  [%d] %s\n", i, r)
		}
		fmt.Fprintf(out, "choose resolution [0-%d, default 0]: ", len(repairs)-1)
		line, err := reader.ReadString('\n')
		if err != nil {
			return 0
		}
		line = strings.TrimSpace(line)
		if line == "" {
			return 0
		}
		n, err := strconv.Atoi(line)
		if err != nil || n < 0 || n >= len(repairs) {
			fmt.Fprintln(out, "invalid choice, using 0")
			return 0
		}
		return n
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ipa:", err)
	os.Exit(1)
}
