// Command ipabench regenerates the tables and figures of the paper's
// evaluation (§5) on the simulated geo-replicated deployment, and runs
// the repository's own wall-clock benchmarks on either replication
// backend.
//
// Usage:
//
//	ipabench -experiment all            # everything (takes a while)
//	ipabench -experiment fig4           # one figure
//	ipabench -experiment table1
//	ipabench -experiment fig7 -quick    # reduced parameters
//	ipabench -experiment serve          # serving benchmark (all four apps)
//	ipabench -backend netrepl           # the same apps on real TCP sockets
//	ipabench -experiment serve -json artifacts   # write BENCH_serve.json
//
// Experiments: table1, fig4, fig5, fig6, fig7, fig8a, fig8b, fig9, the
// ablations beyond the paper: ablation-numeric, ablation-touch,
// ablation-stability, ablation-scope, and four wall-clock benchmarks of
// the repository's own infrastructure: `transport` — the real-socket
// netrepl throughput comparison (streaming vs legacy) — `chaos` — the
// chaos harness's schedules-per-second rate on 3- and 5-replica sims —
// `engine` — the spec engine's compiled plans vs the reference
// interpreter on every application spec (cmd/benchgate gates the
// compiled/interpreted ratio against a committed baseline) — and
// `serve` — closed-loop serving of all four applications over the
// backend-agnostic runtime (sim or netrepl), with invariant checks.
//
// The paper figures model latency inside the simulation, so they are
// sim-only; with -backend netrepl the default experiment set is `serve`.
// -json writes each experiment as BENCH_<name>.json (ops/sec, p50/p99
// where measured) for CI to upload.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ipa/internal/analysis"
	"ipa/internal/bench"
	"ipa/internal/runtime"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "which experiment to run (comma separated; default all on sim, serve on netrepl)")
		backend    = flag.String("backend", runtime.BackendSim, "replication backend for the serve benchmark: sim or netrepl")
		quick      = flag.Bool("quick", false, "reduced parameters (faster, noisier)")
		seed       = flag.Int64("seed", 42, "simulation seed")
		jsonDir    = flag.String("json", "", "also write each experiment as BENCH_<name>.json into this directory")
		workersCSV = flag.String("workers", "", "serve: comma-separated client worker counts for a concurrency sweep, e.g. 1,2,4,8 (netrepl only)")
	)
	flag.Parse()

	var workers []int
	if *workersCSV != "" {
		for _, s := range strings.Split(*workersCSV, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || w < 1 {
				fmt.Fprintf(os.Stderr, "ipabench: bad -workers entry %q (want positive integers, e.g. 1,2,4,8)\n", s)
				os.Exit(1)
			}
			workers = append(workers, w)
		}
		if *backend != runtime.BackendNet {
			fmt.Fprintln(os.Stderr, "ipabench: -workers needs -backend netrepl (the simulator is single-threaded)")
			os.Exit(1)
		}
	}

	opts := bench.DefaultExpOptions()
	if *quick {
		opts = bench.QuickExpOptions()
	}
	opts.Seed = *seed

	// The paper figures model latency inside the simulation; transport and
	// chaos are fixed benchmarks of their own substrates. Only serve takes
	// -backend.
	simFigures := []string{"table1", "fig4", "fig5", "fig6", "fig7", "fig8a", "fig8b", "fig9",
		"ablation-numeric", "ablation-touch", "ablation-stability", "ablation-scope"}
	fixed := []string{"transport", "chaos", "engine"}
	all := append(append(append([]string(nil), simFigures...), fixed...), "serve")

	var wanted []string
	switch {
	case *experiment != "" && *experiment != "all":
		wanted = strings.Split(*experiment, ",")
	case *backend == runtime.BackendNet:
		if *experiment == "all" {
			fmt.Fprintln(os.Stderr, "ipabench: -experiment all is sim-only (the figures model latency in the simulation); with -backend netrepl name the experiments, e.g. -experiment serve")
			os.Exit(1)
		}
		// No experiment named: the meaningful default on the real-socket
		// backend is the serving benchmark over all four applications.
		wanted = []string{"serve"}
	default:
		wanted = all
	}

	serveOps := 0
	if *quick {
		serveOps = 300
		if len(workers) > 0 {
			serveOps = 1500 // the sweep needs steady state to dominate startup
		}
	}

	for _, name := range wanted {
		name = strings.TrimSpace(name)
		if *backend != runtime.BackendSim {
			for _, s := range simFigures {
				if name == s {
					fmt.Fprintf(os.Stderr, "ipabench: experiment %q models latency in the simulation and is sim-only (drop -backend, or run -experiment serve)\n", name)
					os.Exit(1)
				}
			}
			for _, s := range fixed {
				if name == s {
					fmt.Fprintf(os.Stderr, "ipabench: experiment %q already benchmarks a fixed substrate and does not take -backend (drop -backend, or run -experiment serve)\n", name)
					os.Exit(1)
				}
			}
		}
		var (
			e   *bench.Experiment
			err error
		)
		switch name {
		case "table1":
			e, err = bench.Table1(analysis.Options{})
		case "fig4":
			e = bench.Fig4(opts)
		case "fig5":
			e = bench.Fig5(opts)
		case "fig6":
			e = bench.Fig6(opts)
		case "fig7":
			e = bench.Fig7(opts)
		case "fig8a":
			e = bench.Fig8a(opts)
		case "fig8b":
			e = bench.Fig8b(opts)
		case "fig9":
			e = bench.Fig9(opts)
		case "ablation-numeric":
			e = bench.AblationNumeric(opts)
		case "ablation-touch":
			e = bench.AblationTouch(opts)
		case "ablation-stability":
			e = bench.AblationStability(opts)
		case "ablation-scope":
			e = bench.AblationScope(opts)
		case "transport":
			e, err = bench.Transport(opts)
		case "chaos":
			e, err = bench.Chaos(opts)
		case "engine":
			e, err = bench.EngineExecutors(opts)
		case "serve":
			e, err = bench.Serve(bench.ServeOptions{Backend: *backend, Ops: serveOps, Seed: *seed, Workers: workers})
		default:
			fmt.Fprintf(os.Stderr, "ipabench: unknown experiment %q (want one of %s)\n",
				name, strings.Join(all, ", "))
			os.Exit(1)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipabench:", err)
			os.Exit(1)
		}
		fmt.Println(e.Render())
		if *jsonDir != "" {
			path, err := e.WriteJSON(*jsonDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ipabench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}
