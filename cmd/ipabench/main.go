// Command ipabench regenerates the tables and figures of the paper's
// evaluation (§5) on the simulated geo-replicated deployment.
//
// Usage:
//
//	ipabench -experiment all            # everything (takes a while)
//	ipabench -experiment fig4           # one figure
//	ipabench -experiment table1
//	ipabench -experiment fig7 -quick    # reduced parameters
//
// Experiments: table1, fig4, fig5, fig6, fig7, fig8a, fig8b, fig9, the
// ablations beyond the paper: ablation-numeric, ablation-touch,
// ablation-stability, ablation-scope, and two wall-clock benchmarks of
// the repository's own infrastructure: `transport` — the real-socket
// netrepl throughput comparison (streaming vs legacy) — and `chaos` —
// the chaos harness's schedules-per-second rate on 3- and 5-replica sims.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ipa/internal/analysis"
	"ipa/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run (comma separated)")
		quick      = flag.Bool("quick", false, "reduced parameters (faster, noisier)")
		seed       = flag.Int64("seed", 42, "simulation seed")
	)
	flag.Parse()

	opts := bench.DefaultExpOptions()
	if *quick {
		opts = bench.QuickExpOptions()
	}
	opts.Seed = *seed

	all := []string{"table1", "fig4", "fig5", "fig6", "fig7", "fig8a", "fig8b", "fig9",
		"ablation-numeric", "ablation-touch", "ablation-stability", "ablation-scope",
		"transport", "chaos"}
	var wanted []string
	if *experiment == "all" {
		wanted = all
	} else {
		wanted = strings.Split(*experiment, ",")
	}

	for _, name := range wanted {
		var (
			e   *bench.Experiment
			err error
		)
		switch strings.TrimSpace(name) {
		case "table1":
			e, err = bench.Table1(analysis.Options{})
		case "fig4":
			e = bench.Fig4(opts)
		case "fig5":
			e = bench.Fig5(opts)
		case "fig6":
			e = bench.Fig6(opts)
		case "fig7":
			e = bench.Fig7(opts)
		case "fig8a":
			e = bench.Fig8a(opts)
		case "fig8b":
			e = bench.Fig8b(opts)
		case "fig9":
			e = bench.Fig9(opts)
		case "ablation-numeric":
			e = bench.AblationNumeric(opts)
		case "ablation-touch":
			e = bench.AblationTouch(opts)
		case "ablation-stability":
			e = bench.AblationStability(opts)
		case "ablation-scope":
			e = bench.AblationScope(opts)
		case "transport":
			e, err = bench.Transport(opts)
		case "chaos":
			e, err = bench.Chaos(opts)
		default:
			fmt.Fprintf(os.Stderr, "ipabench: unknown experiment %q (want one of %s)\n",
				name, strings.Join(all, ", "))
			os.Exit(1)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipabench:", err)
			os.Exit(1)
		}
		fmt.Println(e.Render())
	}
}
