// Command ipabench regenerates the tables and figures of the paper's
// evaluation (§5) on the simulated geo-replicated deployment, and runs
// the repository's own wall-clock benchmarks on either replication
// backend.
//
// Usage:
//
//	ipabench -experiment all            # everything (takes a while)
//	ipabench -experiment fig4           # one figure
//	ipabench -experiment table1
//	ipabench -experiment fig7 -quick    # reduced parameters
//	ipabench -experiment serve          # serving benchmark (all four apps)
//	ipabench -backend netrepl           # the same apps on real TCP sockets
//	ipabench -experiment serve -json artifacts   # write BENCH_serve.json
//	ipabench serve -remote 127.0.0.1:6390        # drive a live `ipa serve` over the wire
//	ipabench serve -conns 4 -pipeline 8          # self-hosted remote benchmark
//
// Experiments: table1, fig4, fig5, fig6, fig7, fig8a, fig8b, fig9, the
// ablations beyond the paper: ablation-numeric, ablation-touch,
// ablation-stability, ablation-scope, and five wall-clock benchmarks of
// the repository's own infrastructure: `transport` — the real-socket
// netrepl throughput comparison (streaming vs legacy) — `chaos` — the
// chaos harness's schedules-per-second rate on 3- and 5-replica sims —
// `engine` — the spec engine's compiled plans vs the reference
// interpreter on every application spec (cmd/benchgate gates the
// compiled/interpreted ratio against a committed baseline) — `wire` —
// the replication frame codec, v2 binary vs gob (cmd/benchgate gates
// the throughput and allocation ratios) — `recovery` — durable vs
// in-memory serving on netrepl plus kill -9 cold-start recovery times,
// wal-only vs snapshot+tail (cmd/benchgate gates the durable/memory
// ratio) — and `serve` — closed-loop serving of all four applications
// over the backend-agnostic runtime (sim or netrepl), with invariant
// checks.
//
// The `serve` subcommand (distinct from `-experiment serve`) benchmarks
// the wire path: it drives an `ipa serve` server — a live one via
// -remote, or a self-hosted netrepl-backed one — with pipelined
// connections pinned to sites, measures end-to-end ops/sec and latency
// percentiles, runs the same workload through the in-process loop for
// comparison, and writes BENCH_serve_remote.json (cmd/benchgate gates
// the remote/in-process ratio).
//
// The `loadgen` subcommand coordinates the distributed load generator
// (internal/loadgen): N workers — in-process by default, or `ipabench
// worker -listen` daemons named via -workers — drive `ipa serve`
// targets through the wire client under a synchronized ramp-up →
// steady-state → ramp-down schedule, and only the steady window is
// gated. BENCH_loadgen.json embeds the merged phase stats, per-worker
// breakdown, and host metadata:
//
//	ipabench worker -listen 127.0.0.1:7401               # on each load machine
//	ipabench loadgen -ramp-up 2s -run 5s -ramp-down 1s   # self-hosted workers+server
//	ipabench loadgen -target host:6390 -workers host1:7401,host2:7402 -rate 2000
//
// Every mode shares the unified gating flags: -baseline <file|auto>
// gates the fresh measurement in-process (benchgate's checks, same
// exit discipline), -save <file> refreshes a committed baseline, and
// -threshold sets the allowed regression in percent.
//
// The paper figures model latency inside the simulation, so they are
// sim-only; with -backend netrepl the default experiment set is `serve`.
// -json writes each experiment as BENCH_<name>.json (ops/sec, p50/p99
// where measured) for CI to upload.
//
// Both the experiment runner and the `serve` subcommand take
// -cpuprofile and -memprofile, writing pprof profiles of the measured
// run (the heap profile is taken after a final GC, so it shows live
// retention, not transient garbage).
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"ipa/internal/analysis"
	"ipa/internal/bench"
	"ipa/internal/loadgen"
	ipartime "ipa/internal/runtime"
)

// errReported signals a failure already printed (flag usage): main exits
// non-zero without repeating it.
var errReported = errors.New("already reported")

// main is the single exit point; subcommands return errors here so
// deferred cleanup (cluster close, server shutdown, artifact flush) runs
// before the process exits.
func main() {
	if err := run(os.Args[1:]); err != nil {
		if !errors.Is(err, errReported) {
			fmt.Fprintln(os.Stderr, "ipabench:", err)
		}
		os.Exit(1)
	}
}

// startProfiles starts a CPU profile and arranges a heap profile, per
// the -cpuprofile/-memprofile flags (empty path: off). The returned stop
// function finishes both; callers defer it so profiles cover the whole
// run and land even on error paths.
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("-cpuprofile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("-memprofile: %w", err)
			}
			defer f.Close()
			// A final collection makes the profile show live retention
			// rather than garbage awaiting the next GC cycle.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("-memprofile: %w", err)
			}
		}
		return nil
	}, nil
}

func run(args []string) (err error) {
	if len(args) > 0 {
		switch args[0] {
		case "serve":
			return runServeRemote(args[1:])
		case "worker":
			return runWorker(args[1:])
		case "loadgen":
			return runLoadgen(args[1:])
		}
	}

	fs := flag.NewFlagSet("ipabench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "", "which experiment to run (comma separated; default all on sim, serve on netrepl)")
		backend    = fs.String("backend", ipartime.BackendSim, "replication backend for the serve benchmark: sim or netrepl")
		quick      = fs.Bool("quick", false, "reduced parameters (faster, noisier)")
		seed       = fs.Int64("seed", 42, "simulation seed")
		jsonDir    = fs.String("json", "", "also write each experiment as BENCH_<name>.json into this directory")
		workersCSV = fs.String("workers", "", "serve: comma-separated client worker counts for a concurrency sweep, e.g. 1,2,4,8 (netrepl only)")
		wireVer    = fs.Int("wireversion", 0, "serve: force the replication frame encoding on netrepl (1 = legacy gob, 2 = binary; 0 = transport default)")
		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = fs.String("memprofile", "", "write a pprof heap profile (after final GC) to this file")
	)
	gates := gateFlags(fs)
	if err := fs.Parse(args); err != nil {
		return errReported
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()

	var workers []int
	if *workersCSV != "" {
		for _, s := range strings.Split(*workersCSV, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || w < 1 {
				return fmt.Errorf("bad -workers entry %q (want positive integers, e.g. 1,2,4,8)", s)
			}
			workers = append(workers, w)
		}
		if *backend != ipartime.BackendNet {
			return fmt.Errorf("-workers needs -backend netrepl (the simulator is single-threaded)")
		}
	}

	opts := bench.DefaultExpOptions()
	if *quick {
		opts = bench.QuickExpOptions()
	}
	opts.Seed = *seed

	// The paper figures model latency inside the simulation; transport and
	// chaos are fixed benchmarks of their own substrates. Only serve takes
	// -backend.
	simFigures := []string{"table1", "fig4", "fig5", "fig6", "fig7", "fig8a", "fig8b", "fig9",
		"ablation-numeric", "ablation-touch", "ablation-stability", "ablation-scope"}
	fixed := []string{"transport", "chaos", "engine", "wire", "recovery"}
	all := append(append(append([]string(nil), simFigures...), fixed...), "serve")

	var wanted []string
	switch {
	case *experiment != "" && *experiment != "all":
		wanted = strings.Split(*experiment, ",")
	case *backend == ipartime.BackendNet:
		if *experiment == "all" {
			return fmt.Errorf("-experiment all is sim-only (the figures model latency in the simulation); with -backend netrepl name the experiments, e.g. -experiment serve")
		}
		// No experiment named: the meaningful default on the real-socket
		// backend is the serving benchmark over all four applications.
		wanted = []string{"serve"}
	default:
		wanted = all
	}

	serveOps := 0
	if *quick {
		serveOps = 300
		if len(workers) > 0 {
			serveOps = 1500 // the sweep needs steady state to dominate startup
		}
	}

	for _, name := range wanted {
		name = strings.TrimSpace(name)
		if *backend != ipartime.BackendSim {
			for _, s := range simFigures {
				if name == s {
					return fmt.Errorf("experiment %q models latency in the simulation and is sim-only (drop -backend, or run -experiment serve)", name)
				}
			}
			for _, s := range fixed {
				if name == s {
					return fmt.Errorf("experiment %q already benchmarks a fixed substrate and does not take -backend (drop -backend, or run -experiment serve)", name)
				}
			}
		}
		var (
			e   *bench.Experiment
			err error
		)
		switch name {
		case "table1":
			e, err = bench.Table1(analysis.Options{})
		case "fig4":
			e = bench.Fig4(opts)
		case "fig5":
			e = bench.Fig5(opts)
		case "fig6":
			e = bench.Fig6(opts)
		case "fig7":
			e = bench.Fig7(opts)
		case "fig8a":
			e = bench.Fig8a(opts)
		case "fig8b":
			e = bench.Fig8b(opts)
		case "fig9":
			e = bench.Fig9(opts)
		case "ablation-numeric":
			e = bench.AblationNumeric(opts)
		case "ablation-touch":
			e = bench.AblationTouch(opts)
		case "ablation-stability":
			e = bench.AblationStability(opts)
		case "ablation-scope":
			e = bench.AblationScope(opts)
		case "transport":
			e, err = bench.Transport(opts)
		case "chaos":
			e, err = bench.Chaos(opts)
		case "engine":
			e, err = bench.EngineExecutors(opts)
		case "wire":
			e, err = bench.Wire(opts)
		case "recovery":
			recOpts := bench.RecoveryOptions{Seed: *seed}
			if *quick {
				recOpts.Ops = 500
				recOpts.Ladder = []int{200, 1000}
			}
			e, err = bench.Recovery(recOpts)
		case "serve":
			e, err = bench.Serve(bench.ServeOptions{Backend: *backend, Ops: serveOps, Seed: *seed, Workers: workers, WireVersion: *wireVer})
		default:
			return fmt.Errorf("unknown experiment %q (want one of %s)", name, strings.Join(all, ", "))
		}
		if err != nil {
			return err
		}
		if err := emit(e, *jsonDir); err != nil {
			return err
		}
		if err := gates.apply(e); err != nil {
			return err
		}
	}
	return nil
}

// gateOpts are the unified baseline flags every ipabench mode shares:
// -baseline gates the fresh measurement in-process (no separate
// benchgate invocation needed), -save refreshes a baseline file, and
// -threshold is the allowed erosion in percent.
type gateOpts struct {
	baseline  *string
	save      *string
	threshold *float64
}

func gateFlags(fs *flag.FlagSet) gateOpts {
	return gateOpts{
		baseline:  fs.String("baseline", "", "gate the run against this BENCH_<id>.json baseline (\"auto\": the committed default for the experiment)"),
		save:      fs.String("save", "", "write the measured experiment JSON to exactly this path (refresh a baseline)"),
		threshold: fs.Float64("threshold", 20, "allowed regression in percent for -baseline (20 = fail below 80% of baseline)"),
	}
}

// apply saves and/or gates one freshly measured experiment per the
// unified flags. Gate failures surface as ordinary errors (exit 1).
func (g gateOpts) apply(e *bench.Experiment) error {
	if *g.save != "" {
		if err := writeExperimentTo(e, *g.save); err != nil {
			return err
		}
		fmt.Printf("saved %s\n", *g.save)
	}
	if *g.baseline == "" {
		return nil
	}
	basePath := *g.baseline
	if basePath == "auto" {
		var err error
		if basePath, err = bench.DefaultBaseline(e.ID); err != nil {
			return err
		}
	}
	base, err := bench.ReadExperimentJSON(basePath)
	if err != nil {
		return err
	}
	if err := bench.Gate(e, base, *g.threshold/100, os.Stdout); err != nil {
		return err
	}
	fmt.Printf("gate ok: %s vs %s (threshold %.0f%%)\n", e.ID, basePath, *g.threshold)
	return nil
}

// writeExperimentTo writes the artifact to an exact path (WriteJSON
// derives the name from the ID; -save wants full control, e.g.
// internal/bench/testdata/BENCH_loadgen_baseline.json).
func writeExperimentTo(e *bench.Experiment, path string) error {
	dir, err := os.MkdirTemp(filepath.Dir(path), ".bench-save-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	tmp, err := e.WriteJSON(dir)
	if err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// runServeRemote is the `ipabench serve` subcommand: the remote serving
// benchmark over the wire protocol.
func runServeRemote(args []string) (err error) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		remote     = fs.String("remote", "", "address of a live `ipa serve` server (empty: self-host a netrepl-backed server on loopback)")
		app        = fs.String("app", "tournament", "mounted application to call")
		conns      = fs.Int("conns", 2, "client connections")
		pipeline   = fs.Int("pipeline", 8, "closed-loop pipeline depth per connection")
		ops        = fs.Int("ops", 8000, "total measured CALLs across connections")
		rate       = fs.Int("rate", 0, "open-loop CALLs/sec per connection (0: closed loop)")
		seed       = fs.Int64("seed", 42, "workload seed")
		noInproc   = fs.Bool("no-inproc", false, "skip the in-process baseline run")
		jsonDir    = fs.String("json", "", "also write BENCH_serve_remote.json into this directory")
		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = fs.String("memprofile", "", "write a pprof heap profile (after final GC) to this file")
	)
	gates := gateFlags(fs)
	if err := fs.Parse(args); err != nil {
		return errReported
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()
	e, err := bench.ServeRemote(bench.ServeRemoteOptions{
		Addr:       *remote,
		App:        *app,
		Conns:      *conns,
		Pipeline:   *pipeline,
		Ops:        *ops,
		RatePerSec: *rate,
		Seed:       *seed,
		SkipInproc: *noInproc,
	})
	if err != nil {
		return err
	}
	if err := emit(e, *jsonDir); err != nil {
		return err
	}
	return gates.apply(e)
}

// runWorker is the `ipabench worker` subcommand: a load-generation
// worker daemon that serves coordinator sessions (from `ipabench
// loadgen -workers ...`) on a control socket, one at a time, until
// killed.
func runWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ContinueOnError)
	var (
		listen = fs.String("listen", "127.0.0.1:7400", "control address to accept coordinator sessions on")
		quiet  = fs.Bool("quiet", false, "suppress per-session progress logging")
	)
	if err := fs.Parse(args); err != nil {
		return errReported
	}
	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, "worker: "+format+"\n", a...) }
	if *quiet {
		logf = nil
	}
	w := &loadgen.Worker{Log: logf}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("ipabench worker listening on %s\n", ln.Addr())
	return w.ListenAndServe(ln)
}

// runLoadgen is the `ipabench loadgen` subcommand: coordinate a
// multi-worker sustained-load run against `ipa serve` targets and
// write the merged, phase-windowed report.
func runLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		targets     = fs.String("target", "", "comma-separated `ipa serve` addresses (empty: self-host a netrepl-backed server)")
		workerAddrs = fs.String("workers", "", "comma-separated `ipabench worker` control addresses (empty: self-host -self-workers in-process workers)")
		selfWorkers = fs.Int("self-workers", 2, "in-process worker count when -workers is empty")
		app         = fs.String("app", "tournament", "application workload")
		conns       = fs.Int("conns", 2, "driving connections per worker")
		pipeline    = fs.Int("pipeline", 8, "closed-loop pipeline depth per connection")
		rate        = fs.Int("rate", 0, "open-loop CALLs/sec fleet-wide (0: closed loop)")
		rampUp      = fs.Duration("ramp-up", 2*time.Second, "ramp-up window (excluded from gating)")
		runFor      = fs.Duration("run", 5*time.Second, "steady-state window (the measured part)")
		rampDown    = fs.Duration("ramp-down", time.Second, "ramp-down window (excluded from gating)")
		seed        = fs.Int64("seed", 42, "workload seed")
		reportEvery = fs.Duration("report-every", time.Second, "worker progress-report period")
		noVerify    = fs.Bool("no-verify", false, "skip the post-run convergence verification")
		quiet       = fs.Bool("quiet", false, "suppress progress and interval logging")
		jsonDir     = fs.String("json", "", "also write BENCH_loadgen.json into this directory")
	)
	gates := gateFlags(fs)
	if err := fs.Parse(args); err != nil {
		return errReported
	}
	opts := bench.LoadgenOptions{
		Workers:     *selfWorkers,
		App:         *app,
		Conns:       *conns,
		Pipeline:    *pipeline,
		RatePerSec:  *rate,
		RampUp:      *rampUp,
		Run:         *runFor,
		RampDown:    *rampDown,
		Seed:        *seed,
		ReportEvery: *reportEvery,
		SkipVerify:  *noVerify,
	}
	if *targets != "" {
		opts.Targets = splitCSV(*targets)
	}
	if *workerAddrs != "" {
		opts.WorkerAddrs = splitCSV(*workerAddrs)
	}
	if !*quiet {
		opts.Log = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
		opts.OnInterval = func(iv loadgen.Interval) {
			fmt.Fprintf(os.Stderr, "worker %d %-9s %6d ops %4d errs %5d refusals\n",
				iv.Worker, iv.Phase, iv.Ops, iv.Errors, iv.Refusals)
		}
	}
	e, err := bench.Loadgen(opts)
	if err != nil {
		return err
	}
	if err := emit(e, *jsonDir); err != nil {
		return err
	}
	return gates.apply(e)
}

func splitCSV(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// emit renders an experiment and optionally writes its JSON artifact.
func emit(e *bench.Experiment, jsonDir string) error {
	fmt.Println(e.Render())
	if jsonDir != "" {
		path, err := e.WriteJSON(jsonDir)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}
