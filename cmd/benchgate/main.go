// Command benchgate compares a freshly measured benchmark artifact
// against its committed baseline and exits non-zero on regression. It
// gates ratios, not raw ops/sec, so the committed baselines stay
// meaningful across hardware: both sides of each ratio run on the same
// runner, and the variance cancels. Three experiments are gated,
// selected by the artifact's ID:
//
//   - engine (BENCH_engine.json): the spec engine's compiled/interpreted
//     speed-up per application spec;
//   - serve_remote (BENCH_serve_remote.json): the wire-protocol server's
//     remote/in-process throughput ratio (with an absolute 50% floor);
//   - wire (BENCH_wire.json): the replication frame codec's v2/gob
//     throughput ratios (absolute 2x floor per direction), its combined
//     allocation improvement (absolute 5x floor), and v2 bytes/txn
//     non-growth;
//   - recovery (BENCH_recovery.json): the durable/in-memory serving
//     throughput ratio — the WAL's fsync-before-ack overhead (with a
//     low absolute floor: the closed loop is the group commit's worst
//     case).
//
// Usage:
//
//	benchgate -current artifacts/BENCH_engine.json \
//	          -baseline internal/bench/testdata/BENCH_engine_baseline.json
//	benchgate -current artifacts/BENCH_serve_remote.json \
//	          -baseline internal/bench/testdata/BENCH_serve_remote_baseline.json
//
// Refresh a baseline after a deliberate change, e.g.:
//
//	go run ./cmd/ipabench -experiment engine -quick -json internal/bench/testdata
//	mv internal/bench/testdata/BENCH_engine.json internal/bench/testdata/BENCH_engine_baseline.json
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"ipa/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		code := 1
		var ue usageError
		if errors.As(err, &ue) {
			code = 2
		}
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(code)
	}
	fmt.Println("benchgate: ok")
}

// usageError marks invocation problems (exit 2) as opposed to gate
// failures (exit 1).
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

func run(args []string) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		current   = fs.String("current", "", "freshly measured BENCH_<id>.json")
		baseline  = fs.String("baseline", "", "committed baseline (default per experiment ID)")
		tolerance = fs.Float64("tolerance", 0.20, "allowed ratio erosion (0.20 = fail below 80% of baseline)")
	)
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	if *current == "" {
		return usageError{errors.New("-current is required")}
	}
	cur, err := bench.ReadExperimentJSON(*current)
	if err != nil {
		return usageError{err}
	}

	basePath := *baseline
	if basePath == "" {
		switch cur.ID {
		case "engine":
			basePath = "internal/bench/testdata/BENCH_engine_baseline.json"
		case "serve_remote":
			basePath = "internal/bench/testdata/BENCH_serve_remote_baseline.json"
		case "wire":
			basePath = "internal/bench/testdata/BENCH_wire_baseline.json"
		case "recovery":
			basePath = "internal/bench/testdata/BENCH_recovery_baseline.json"
		default:
			return usageError{fmt.Errorf("no default baseline for experiment %q; pass -baseline", cur.ID)}
		}
	}
	base, err := bench.ReadExperimentJSON(basePath)
	if err != nil {
		return usageError{err}
	}

	switch cur.ID {
	case "engine":
		if ratios, err := bench.EngineSpeedups(cur); err == nil {
			baseRatios, _ := bench.EngineSpeedups(base)
			for _, n := range sortedKeys(ratios) {
				fmt.Printf("%-12s compiled/interpreted %.2fx (baseline %.2fx)\n", n, ratios[n], baseRatios[n])
			}
		}
		return bench.CheckEngineBaseline(cur, base, *tolerance)
	case "serve_remote":
		if ratios, err := bench.ServeRemoteRatios(cur); err == nil {
			baseRatios, _ := bench.ServeRemoteRatios(base)
			for _, n := range sortedKeys(ratios) {
				fmt.Printf("%-12s remote/in-process %.0f%% (baseline %.0f%%)\n", n, 100*ratios[n], 100*baseRatios[n])
			}
		}
		return bench.CheckServeRemoteBaseline(cur, base, *tolerance)
	case "wire":
		if ratios, err := bench.WireSpeedups(cur); err == nil {
			baseRatios, _ := bench.WireSpeedups(base)
			for _, n := range sortedKeys(ratios) {
				fmt.Printf("%-12s v2/gob %.2fx (baseline %.2fx)\n", n, ratios[n], baseRatios[n])
			}
		}
		if alloc, err := bench.WireAllocImprovement(cur); err == nil {
			baseAlloc, _ := bench.WireAllocImprovement(base)
			fmt.Printf("%-12s gob/v2 %.1fx fewer (baseline %.1fx)\n", "allocs", alloc, baseAlloc)
		}
		return bench.CheckWireBaseline(cur, base, *tolerance)
	case "recovery":
		if ratios, err := bench.DurableServeRatios(cur); err == nil {
			baseRatios, _ := bench.DurableServeRatios(base)
			for _, n := range sortedKeys(ratios) {
				fmt.Printf("%-12s durable/memory %.0f%% (baseline %.0f%%)\n", n, 100*ratios[n], 100*baseRatios[n])
			}
		}
		return bench.CheckRecoveryBaseline(cur, base, *tolerance)
	default:
		return usageError{fmt.Errorf("experiment %q has no gate (want engine, serve_remote, wire or recovery)", cur.ID)}
	}
}

func sortedKeys(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
