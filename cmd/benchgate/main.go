// Command benchgate compares a freshly measured benchmark artifact
// against its committed baseline and exits non-zero on regression. It
// gates ratios, not raw ops/sec, so the committed baselines stay
// meaningful across hardware: both sides of each ratio run on the same
// runner, and the variance cancels. Five experiments are gated,
// selected by the artifact's ID:
//
//   - engine (BENCH_engine.json): the spec engine's compiled/interpreted
//     speed-up per application spec;
//   - serve_remote (BENCH_serve_remote.json): the wire-protocol server's
//     remote/in-process throughput ratio (with an absolute 50% floor);
//   - wire (BENCH_wire.json): the replication frame codec's v2/gob
//     throughput ratios (absolute 2x floor per direction), its combined
//     allocation improvement (absolute 5x floor), and v2 bytes/txn
//     non-growth;
//   - recovery (BENCH_recovery.json): the durable/in-memory serving
//     throughput ratio — the WAL's fsync-before-ack overhead (with a
//     low absolute floor: the closed loop is the group commit's worst
//     case);
//   - loadgen (BENCH_loadgen.json): the coordinated sustained-load run —
//     steady-state throughput against the baseline, steady p99 under a
//     fixed headroom, and an absolute 1% error-rate ceiling. This gate
//     compares raw ops/sec, so benchgate prints a warning when the
//     current and baseline artifacts were measured on different hosts
//     (every BENCH_*.json records its host metadata).
//
// Usage:
//
//	benchgate -current artifacts/BENCH_engine.json \
//	          -baseline internal/bench/testdata/BENCH_engine_baseline.json
//	benchgate -current artifacts/BENCH_serve_remote.json \
//	          -baseline internal/bench/testdata/BENCH_serve_remote_baseline.json
//
// Refresh a baseline after a deliberate change, e.g.:
//
//	go run ./cmd/ipabench -experiment engine -quick -json internal/bench/testdata
//	mv internal/bench/testdata/BENCH_engine.json internal/bench/testdata/BENCH_engine_baseline.json
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"ipa/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		code := 1
		var ue usageError
		if errors.As(err, &ue) {
			code = 2
		}
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(code)
	}
	fmt.Println("benchgate: ok")
}

// usageError marks invocation problems (exit 2) as opposed to gate
// failures (exit 1).
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

func run(args []string) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		current   = fs.String("current", "", "freshly measured BENCH_<id>.json")
		baseline  = fs.String("baseline", "", "committed baseline (default per experiment ID)")
		tolerance = fs.Float64("tolerance", 0.20, "allowed ratio erosion (0.20 = fail below 80% of baseline)")
	)
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	if *current == "" {
		return usageError{errors.New("-current is required")}
	}
	cur, err := bench.ReadExperimentJSON(*current)
	if err != nil {
		return usageError{err}
	}

	basePath := *baseline
	if basePath == "" {
		var derr error
		basePath, derr = bench.DefaultBaseline(cur.ID)
		if derr != nil {
			return usageError{fmt.Errorf("%w; pass -baseline", derr)}
		}
	}
	base, err := bench.ReadExperimentJSON(basePath)
	if err != nil {
		return usageError{err}
	}

	return bench.Gate(cur, base, *tolerance, os.Stdout)
}
