// Command benchgate compares a freshly measured BENCH_engine.json
// against the committed baseline and exits non-zero when the spec
// engine's compiled/interpreted speed-up has regressed beyond the
// tolerance. CI runs it after `ipabench -experiment engine`; the ratio
// is machine-independent (both executors share the runner), so the
// committed baseline stays meaningful across hardware.
//
// Usage:
//
//	benchgate -current artifacts/BENCH_engine.json \
//	          -baseline internal/bench/testdata/BENCH_engine_baseline.json
//
// Refresh the baseline after a deliberate engine change:
//
//	go run ./cmd/ipabench -experiment engine -quick -json internal/bench/testdata
//	mv internal/bench/testdata/BENCH_engine.json internal/bench/testdata/BENCH_engine_baseline.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ipa/internal/bench"
)

func main() {
	var (
		current   = flag.String("current", "", "freshly measured BENCH_engine.json")
		baseline  = flag.String("baseline", "internal/bench/testdata/BENCH_engine_baseline.json", "committed baseline BENCH_engine.json")
		tolerance = flag.Float64("tolerance", 0.20, "allowed speed-up erosion (0.20 = fail below 80% of baseline)")
	)
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	cur, err := bench.ReadExperimentJSON(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	base, err := bench.ReadExperimentJSON(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	if ratios, err := bench.EngineSpeedups(cur); err == nil {
		names := make([]string, 0, len(ratios))
		for n := range ratios {
			names = append(names, n)
		}
		sort.Strings(names)
		baseRatios, _ := bench.EngineSpeedups(base)
		for _, n := range names {
			fmt.Printf("%-12s compiled/interpreted %.2fx (baseline %.2fx)\n", n, ratios[n], baseRatios[n])
		}
	}

	if err := bench.CheckEngineBaseline(cur, base, *tolerance); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}
